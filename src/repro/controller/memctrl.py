"""FR-FCFS memory controller with PRA support (one instance per channel).

Implements the paper's baseline controller (Section 5.1.2) plus the PRA
extensions (Section 4):

* FR-FCFS scheduling: ready row-buffer hits first, then oldest-first,
  with reads prioritized over writes;
* separate 64-entry read/write queues with 48/16 high/low watermarks
  driving write drains;
* relaxed close-page (close rows nothing can use; precharge power-down)
  or restricted close-page (auto-precharge after every access);
* a 4-access row-hit cap per activation to preserve fairness;
* PRA: masked write activations (mask = OR of queued same-row writes),
  +1 cycle mask transfer on the address bus, false-row-buffer-hit
  detection and recovery (PRE + re-ACT), relaxed tRRD/tFAW for partial
  activations, and partial write bursts (only dirty words driven);
* refresh every tREFI with open-bank force-precharge.

The controller is stepped by the system simulator; ``step`` issues at
most one command and returns a *hint*: the next cycle at which calling
again could make progress (used for event skip-ahead).

The scheduling passes are deliberately written with bank/rank pruning
and local-variable binding: this is the hottest code in the simulator.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Tuple

from repro.controller.policies import ROW_HIT_CAP, RowPolicy
from repro.controller.queues import RequestQueue, row_key
from repro.controller.stats import ControllerStats
from repro.core import mask as mask_ops
from repro.core.schemes import Scheme
from repro.dram.channel import Channel
from repro.dram.geometry import FULL_MASK, WORDS_PER_LINE
from repro.dram.commands import Request
from repro.dram.protocol import Cmd, CommandRecord
from repro.dram.timing import TimingParams
from repro.power.accounting import PowerAccountant

_NEVER = 1 << 62


class ChannelController:
    """Memory controller for a single channel."""

    def __init__(
        self,
        channel: Channel,
        scheme: Scheme,
        timing: TimingParams,
        policy: RowPolicy,
        accountant: PowerAccountant,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        drain_high_watermark: int = 48,
        drain_low_watermark: int = 16,
        scan_depth: int = 8,
        row_hit_cap: int = ROW_HIT_CAP,
        scheduler: str = "frfcfs",
    ) -> None:
        if not 0 <= drain_low_watermark < drain_high_watermark <= write_queue_size:
            raise ValueError("watermarks must satisfy 0 <= low < high <= capacity")
        if scheduler not in ("frfcfs", "fcfs"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.channel = channel
        self.scheme = scheme
        self.timing = timing
        self.policy = policy
        self.accountant = accountant
        self.read_q = RequestQueue(read_queue_size)
        self.write_q = RequestQueue(write_queue_size)
        self.hi_mark = drain_high_watermark
        self.lo_mark = drain_low_watermark
        self.scan_depth = scan_depth
        #: "frfcfs" (paper baseline: ready row hits first) or "fcfs"
        #: (pure oldest-first; ablation of the hit-first pass).
        self.scheduler = scheduler
        self.row_hit_cap = row_hit_cap if policy.allows_row_hits else 0
        self.stats = ControllerStats()
        self.draining = False
        #: (complete_cycle, request) pairs for reads whose data returned.
        self.completed_reads: List[Tuple[int, Request]] = []
        #: Requests that found their queue full; drained FIFO as space
        #: frees (models an admission buffer in front of the controller).
        self.overflow: "deque[Request]" = deque()
        #: Highest cycle at which this controller has issued a command,
        #: plus one; batched simulation never reprocesses earlier cycles.
        self.local_clock: int = 0
        self._other_ranks = len(channel.ranks) - 1
        #: Whether writes need full coverage from an open (partial) row.
        self._write_needs_mask = scheme.write_uses_mask
        #: Optional differential verifier (repro.dram.protocol); every
        #: issued command is replayed through it when attached.
        self.protocol_checker = None

    # ------------------------------------------------------------------
    # Queue interface (used by the CPU/cache side)
    # ------------------------------------------------------------------
    def can_accept(self, req: Request) -> bool:
        queue = self.read_q if req.is_read else self.write_q
        return not queue.is_full

    def enqueue(self, req: Request) -> bool:
        """Admit a request; returns False when the queue is full."""
        queue = self.read_q if req.is_read else self.write_q
        if queue.is_full:
            return False
        req._missed = False
        req._false = False
        queue.append(req)
        return True

    def submit(self, req: Request) -> None:
        """Admit a request, spilling to the admission buffer if full."""
        if self.overflow or not self.enqueue(req):
            self.overflow.append(req)

    def _drain_overflow(self) -> None:
        buf = self.overflow
        while buf and self.enqueue(buf[0]):
            buf.popleft()

    @property
    def pending(self) -> int:
        return len(self.read_q) + len(self.write_q) + len(self.overflow)

    def _observe(self, record: CommandRecord) -> None:
        if self.protocol_checker is not None:
            self.protocol_checker.observe(record)

    def _needed_mask(self, req: Request) -> int:
        """MAT-group coverage the request needs from an open row."""
        if self._write_needs_mask and not req.is_read:
            return req.dirty_mask
        return FULL_MASK

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> Tuple[bool, int]:
        """Try to issue one command at ``cycle``.

        Returns ``(issued, hint)`` where ``hint`` is the next cycle at
        which progress may be possible (valid when nothing issued).
        """
        channel = self.channel
        if self.overflow:
            self._drain_overflow()
        if not channel.cmd_bus_ready(cycle):
            return (False, channel.cmd_bus_free)

        hint = _NEVER
        open_banks = []  # (rank_idx, bank_idx, bank) after housekeeping
        refresh_pending = 0  # bitmask of ranks due for refresh
        read_q, write_q = self.read_q, self.write_q
        policy = self.policy
        close_idle = policy.closes_idle_rows
        hit_cap = self.row_hit_cap

        # --- Housekeeping + refresh + open-bank collection (one pass) ---
        for rank_idx, rank in enumerate(channel.ranks):
            refresh_due = rank.refresh_due(cycle)
            if refresh_due:
                refresh_pending |= 1 << rank_idx
                if rank.powered_down:
                    rank.exit_power_down(cycle)
                    hint = min(hint, rank.pd_exit_ready)
                    continue
                gate = rank.command_gate(cycle)
                if cycle < gate:
                    hint = min(hint, gate)
                    continue
            any_open = False
            for bank_idx, bank in enumerate(rank.banks):
                if bank.open_row is None:
                    continue
                # Auto-precharge (restricted policy) is command-free.
                if bank.pending_autopre:
                    if bank.can_precharge(cycle):
                        rank.accrue_background(cycle)
                        bank.precharge(cycle)
                        bank.pending_autopre = False
                        self.stats.precharges += 1
                        self._observe(CommandRecord(
                            cycle=cycle, cmd=Cmd.PRE, rank=rank_idx,
                            bank=bank_idx, implicit=True))
                    else:
                        hint = min(hint, bank.pre_ready)
                        any_open = True
                    continue
                if refresh_due:
                    # Force-close for refresh (consumes the command slot).
                    if bank.can_precharge(cycle):
                        rank.accrue_background(cycle)
                        bank.precharge(cycle)
                        self.stats.precharges += 1
                        self._observe(CommandRecord(
                            cycle=cycle, cmd=Cmd.PRE, rank=rank_idx,
                            bank=bank_idx))
                        channel.occupy_cmd_bus(cycle)
                        return (True, cycle + 1)
                    hint = min(hint, bank.pre_ready)
                    any_open = True
                    continue
                if close_idle and cycle >= bank.pre_ready:
                    cap_hit = hit_cap and bank.open_row_accesses >= hit_cap
                    if cap_hit or not (
                        read_q.has_row((rank_idx, bank_idx, bank.open_row))
                        or write_q.has_row((rank_idx, bank_idx, bank.open_row))
                    ):
                        rank.accrue_background(cycle)
                        bank.precharge(cycle)
                        self.stats.precharges += 1
                        self._observe(CommandRecord(
                            cycle=cycle, cmd=Cmd.PRE, rank=rank_idx,
                            bank=bank_idx, implicit=True))
                        continue
                any_open = True
                open_banks.append((rank_idx, bank_idx, bank))
            if refresh_due and not any_open and not rank.powered_down:
                if cycle >= rank.command_gate(cycle):
                    rank.do_refresh(cycle)
                    self.accountant.on_refresh()
                    self.stats.refreshes += 1
                    self._observe(CommandRecord(cycle=cycle, cmd=Cmd.REF, rank=rank_idx))
                    channel.occupy_cmd_bus(cycle)
                    return (True, cycle + 1)
            if (
                not refresh_due
                and policy.uses_power_down
                and not rank.powered_down
                and not any_open
                and not read_q.pending_for_rank(rank_idx)
                and not write_q.pending_for_rank(rank_idx)
                and rank.all_precharged
            ):
                rank.enter_power_down(cycle)
                self.stats.power_down_entries += 1

        # --- Write drain hysteresis (48/16 watermarks) ---
        if self.draining and len(write_q) <= self.lo_mark:
            self.draining = False
        elif not self.draining and len(write_q) >= self.hi_mark:
            self.draining = True
            self.stats.drain_entries += 1

        serve_writes = self.draining or (not len(read_q) and len(write_q))
        primary = write_q if serve_writes else read_q

        # --- Pass 1: ready row-buffer hits, oldest first (FR-FCFS) ---
        if hit_cap and open_banks and self.scheduler == "frfcfs":
            best = None
            best_bank = None
            for rank_idx, bank_idx, bank in open_banks:
                if refresh_pending >> rank_idx & 1:
                    continue
                if bank.open_row_accesses >= hit_cap:
                    continue
                cand = primary.oldest_for_row((rank_idx, bank_idx, bank.open_row))
                if cand is None:
                    continue
                needed = cand.dirty_mask if (self._write_needs_mask and not cand.is_read) else FULL_MASK
                if needed & ~bank.open_mask:
                    continue
                if best is None or (cand.arrive_cycle, cand.req_id) < (
                    best.arrive_cycle,
                    best.req_id,
                ):
                    best = cand
                    best_bank = (rank_idx, bank_idx)
            if best is not None:
                issued, h = self._try_column(cycle, best, *best_bank)
                if issued:
                    return (True, cycle + 1)
                hint = min(hint, h)

        # --- Pass 2: oldest-first over the primary queue ---
        issued, h = self._try_oldest(cycle, primary, refresh_pending)
        if issued:
            return (True, cycle + 1)
        hint = min(hint, h)

        # Idle: wake for the next refresh deadline.
        for rank in channel.ranks:
            if rank.next_refresh < hint:
                hint = rank.next_refresh
        return (False, hint if hint > cycle else cycle + 1)

    # ------------------------------------------------------------------
    def run_until(self, cycle: int, limit: int) -> int:
        """Issue commands from ``cycle`` until (exclusive) ``limit``.

        ``limit`` must be the next cycle at which the outside world can
        change the controller's inputs (a new request arrival or an
        already-pending completion).  If a read completes *earlier*
        than ``limit``, the batch stops there so the waiting core can
        react on time.  Returns the next cycle at which calling the
        controller could make progress.
        """
        local = max(cycle, self.local_clock)
        if local >= limit:
            return local
        completions_seen = len(self.completed_reads)
        while local < limit:
            issued, hint = self.step(local)
            if issued:
                self.local_clock = local + 1
                if len(self.completed_reads) > completions_seen:
                    for done_cycle, _ in self.completed_reads[completions_seen:]:
                        if done_cycle < limit:
                            limit = done_cycle
                    completions_seen = len(self.completed_reads)
                local += 1
                continue
            if hint >= limit:
                return hint
            if not self.pending:
                # Only refreshes remain; let the outer loop pace them so
                # an unbounded horizon cannot trap the batch here.
                return hint
            local = hint
        return limit

    # ------------------------------------------------------------------
    def _try_oldest(
        self, cycle: int, primary: RequestQueue, refresh_pending: int
    ) -> Tuple[bool, int]:
        hint = _NEVER
        banks_seen = set()
        ranks = self.channel.ranks
        allows_hits = self.policy.allows_row_hits
        hit_cap = self.row_hit_cap
        write_needs_mask = self._write_needs_mask
        for req in primary.iter_oldest(self.scan_depth):
            addr = req.addr
            rank_idx = addr.rank
            if refresh_pending >> rank_idx & 1:
                continue
            bank_idx = addr.bank
            bank_key = rank_idx << 8 | bank_idx
            if bank_key in banks_seen:
                continue  # an older request to this bank already failed
            banks_seen.add(bank_key)
            rank = ranks[rank_idx]
            if rank.powered_down:
                rank.exit_power_down(cycle)
                hint = min(hint, rank.pd_exit_ready)
                continue
            bank = rank.banks[bank_idx]
            open_row = bank.open_row
            needed = req.dirty_mask if (write_needs_mask and not req.is_read) else FULL_MASK
            if open_row is None:
                issued, h = self._try_activate(cycle, req, rank_idx, bank_idx)
            elif open_row == addr.row and not (needed & ~bank.open_mask):
                # Restricted close-page permits exactly one column access
                # per activation: the one the ACT was issued for.
                may_access = (
                    bank.open_row_accesses < hit_cap
                    if allows_hits
                    else (
                        bank.open_row_accesses == 0
                        and bank.reserved_req == req.req_id
                    )
                )
                if may_access:
                    issued, h = self._try_column(cycle, req, rank_idx, bank_idx)
                else:
                    issued, h = self._try_precharge(cycle, rank, bank)
            else:
                if open_row == addr.row and not req._false:
                    req._false = True
                    self.stats.false_hit_reactivations += 1
                if self._row_still_useful(rank_idx, bank_idx, bank, primary):
                    continue  # let pending hits to the open row drain first
                issued, h = self._try_precharge(cycle, rank, bank)
            if issued:
                return (True, hint)
            hint = min(hint, h)
        return (False, hint)

    def _row_still_useful(
        self, rank_idx: int, bank_idx: int, bank, primary: RequestQueue
    ) -> bool:
        """True if the open row has coverable requests in ``primary``.

        Only the queue currently being served may keep a row open:
        otherwise a read conflicting with a row that only queued writes
        could use would wait for writes that are themselves waiting for
        the read queue to empty (priority livelock).
        """
        if not self.policy.allows_row_hits:
            return False
        if self.scheduler == "fcfs":
            # Strict order: the oldest request always wins the bank.
            return False
        if bank.open_row_accesses >= self.row_hit_cap:
            return False
        key = (rank_idx, bank_idx, bank.open_row)
        open_mask = bank.open_mask
        for cand in primary.requests_for_row(key):
            needed = (
                cand.dirty_mask
                if (self._write_needs_mask and not cand.is_read)
                else FULL_MASK
            )
            if not (needed & ~open_mask):
                return True
        return False

    # ------------------------------------------------------------------
    # Command issue helpers
    # ------------------------------------------------------------------
    def _activation_plan(self, req: Request) -> Tuple[int, float, bool]:
        """Coverage mask, activated fraction and masked? for an ACT."""
        scheme = self.scheme
        if req.is_write and scheme.write_uses_mask:
            merged = req.dirty_mask
            for w in self.write_q.requests_for_row(row_key(req)):
                merged |= w.dirty_mask
            fraction = (
                mask_ops.popcount(merged) / WORDS_PER_LINE
            ) * scheme.mask_scale
            masked = merged != FULL_MASK
            return (merged, fraction, masked)
        if req.is_write:
            return (FULL_MASK, scheme.write_fraction, False)
        return (FULL_MASK, scheme.read_fraction, False)

    def _try_activate(
        self, cycle: int, req: Request, rank_idx: int, bank_idx: int
    ) -> Tuple[bool, int]:
        rank = self.channel.ranks[rank_idx]
        bank = rank.banks[bank_idx]
        coverage, fraction, masked = self._activation_plan(req)
        # Ceil, not round: a 2.5/8 activation must weigh at least 3/8
        # in the tRRD/tFAW budget (conservative for peak power).
        granularity = max(1, math.ceil(fraction * 8 - 1e-9))
        earliest = rank.earliest_activate(cycle, bank_idx, granularity)
        if earliest > cycle:
            return (False, earliest)
        if masked and self.scheme.mask_via_dm_pin:
            # Section 4.2 alternative: the mask rides the DM pin, so no
            # +1 tRCD and no second command-bus cycle - but the chip's
            # write buffer is occupied until the partial activation
            # completes, blocking further writes to this rank (the
            # rank/bank-parallelism cost the paper warns about).
            rank.hold_write_buffer(cycle + self.timing.trcd)
        rank.accrue_background(cycle)
        act_mask = coverage if masked else FULL_MASK
        pays_mask_cycle = masked and self.scheme.masked_act_extra_cycle
        bank.activate(
            cycle, req.addr.row, act_mask, mask_transfer_cycle=pays_mask_cycle
        )
        rank.record_activate(cycle, granularity)
        bank.reserved_req = req.req_id if self.policy.auto_precharge else None
        self._observe(CommandRecord(
            cycle=cycle, cmd=Cmd.ACT, rank=rank_idx, bank=bank_idx,
            row=req.addr.row, mask=act_mask, granularity=granularity,
            masked=pays_mask_cycle))
        self.accountant.on_activate_fraction(fraction)
        kind_stats = self.stats.reads if req.is_read else self.stats.writes
        kind_stats.activations += 1
        req._missed = True
        cmd_cycles = 2 if pays_mask_cycle else 1
        self.channel.occupy_cmd_bus(cycle, cmd_cycles)
        return (True, cycle + 1)

    def _try_precharge(self, cycle, rank, bank) -> Tuple[bool, int]:
        gate = rank.command_gate(cycle)
        if cycle < gate:
            return (False, gate)
        if not bank.can_precharge(cycle):
            return (False, max(bank.pre_ready, cycle + 1))
        rank.accrue_background(cycle)
        rank_idx = self.channel.ranks.index(rank)
        bank_idx = rank.banks.index(bank)
        bank.precharge(cycle)
        bank.pending_autopre = False
        self.stats.precharges += 1
        self._observe(CommandRecord(
            cycle=cycle, cmd=Cmd.PRE, rank=rank_idx, bank=bank_idx))
        self.channel.occupy_cmd_bus(cycle)
        return (True, cycle + 1)

    def _try_column(
        self, cycle: int, req: Request, rank_idx: int, bank_idx: int
    ) -> Tuple[bool, int]:
        rank = self.channel.ranks[rank_idx]
        bank = rank.banks[bank_idx]
        timing = self.timing
        if req.is_read:
            earliest = rank.earliest_read(cycle, bank_idx)
            data_delay = timing.tcas
        else:
            earliest = rank.earliest_write(cycle, bank_idx)
            data_delay = timing.tcwl
        if earliest > cycle or rank.powered_down:
            return (False, max(earliest, cycle + 1))
        burst_start = cycle + data_delay
        bus_start = self.channel.earliest_burst_start(burst_start, rank_idx)
        if bus_start > burst_start:
            return (False, max(cycle + 1, bus_start - data_delay))
        if req.is_read:
            bank.read(cycle)
        else:
            bank.write(cycle)
        burst_end = self.channel.occupy_data_bus(burst_start, rank_idx)
        self._observe(CommandRecord(
            cycle=cycle, cmd=Cmd.RD if req.is_read else Cmd.WR,
            rank=rank_idx, bank=bank_idx,
            burst_start=burst_start, burst_end=burst_end,
            needed_mask=self._needed_mask(req)))
        # Recompute recovery with the channel's (possibly FGA-doubled)
        # burst length: the device cannot precharge before data is in.
        if req.is_read:
            rank.record_read(cycle)
        else:
            bank.pre_ready = max(bank.pre_ready, burst_end + timing.twr)
            rank.record_write(cycle, burst_end)
        if self.policy.auto_precharge:
            bank.pending_autopre = True

        was_hit = not req._missed
        was_false = bool(req._false)
        if req.is_read:
            req.complete_cycle = burst_end
            latency = burst_end - req.arrive_cycle
            self.stats.reads.record_service(was_hit, was_false, latency)
            self.read_q.remove(req)
            self.completed_reads.append((burst_end, req))
            self.accountant.on_read_burst(other_ranks=self._other_ranks)
        else:
            req.complete_cycle = cycle
            latency = cycle - req.arrive_cycle
            self.stats.writes.record_service(was_hit, was_false, latency)
            self.write_q.remove(req)
            if self.scheme.scale_write_io:
                driven = mask_ops.popcount(req.dirty_mask) / WORDS_PER_LINE
            else:
                driven = 1.0
            self.accountant.on_write_burst(
                driven_fraction=driven, other_ranks=self._other_ranks
            )
        self.channel.occupy_cmd_bus(cycle)
        return (True, cycle + 1)

    # ------------------------------------------------------------------
    def flush_background(self, cycle: int) -> None:
        """Accrue background residency up to ``cycle`` (end of run)."""
        for rank in self.channel.ranks:
            rank.accrue_background(cycle)
            self.accountant.add_background(rank.bg_residency)
            rank.bg_residency = {"act_stby": 0, "pre_stby": 0, "pre_pdn": 0}
