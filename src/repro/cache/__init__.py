"""Cache hierarchy substrate: FGD lines, set-associative caches, DBI."""

from repro.cache.dbi import DirtyBlockIndex
from repro.cache.hierarchy import CacheHierarchy, MemoryTraffic
from repro.cache.line import CacheLine, word_mask_for_store
from repro.cache.set_assoc import CacheStats, Eviction, SetAssociativeCache

__all__ = [
    "CacheHierarchy",
    "CacheLine",
    "CacheStats",
    "DirtyBlockIndex",
    "Eviction",
    "MemoryTraffic",
    "SetAssociativeCache",
    "word_mask_for_store",
]
