"""Two-level cache hierarchy with FGD propagation (Figure 8).

Store instructions set word-granularity dirty bits in the L1 data
cache; when a dirty L1 line is evicted its dirty bits are OR-ed into
the corresponding L2 line; when a dirty L2 line is evicted the merged
dirty bits travel with the writeback to the memory controller, where
they become the PRA mask.

Two operating modes:

* **full** — per-core L1 data caches in front of a shared L2, the
  configuration of Table 3;
* **LLC-only** — traces are interpreted as post-L1 accesses and go
  straight to the shared L2.  The big experiments use this mode (the
  workload profiles are calibrated at LLC level); the full mode is
  exercised by unit/integration tests and examples.

The hierarchy is non-inclusive non-exclusive (NINE): L2 victims are not
back-invalidated from L1s, which is sufficient for memory-traffic
modelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cache.dbi import DirtyBlockIndex
from repro.cache.set_assoc import CacheStats, Eviction, SetAssociativeCache


@dataclass(slots=True)
class MemoryTraffic:
    """DRAM-side traffic produced by one CPU access."""

    #: Line addresses that must be read (fills), in issue order.
    fills: List[int] = field(default_factory=list)
    #: (line address, FGD dirty mask) writebacks.
    writebacks: List[Tuple[int, int]] = field(default_factory=list)
    #: Whether the demand access hit in the LLC (or L1).
    demand_hit: bool = True


class CacheHierarchy:
    """L1 data caches (optional) in front of a shared L2 LLC."""

    def __init__(
        self,
        l2: SetAssociativeCache,
        l1s: Optional[List[SetAssociativeCache]] = None,
        dbi: Optional[DirtyBlockIndex] = None,
    ) -> None:
        self.l2 = l2
        self.l1s = l1s
        self.dbi = dbi

    # ------------------------------------------------------------------
    def access(
        self,
        core_id: int,
        line_addr: int,
        write_mask: int = 0,
        fill_on_miss: bool = True,
    ) -> MemoryTraffic:
        """Perform a load (``write_mask == 0``) or store.

        ``fill_on_miss=False`` models non-temporal streaming stores
        that allocate the line without fetching it from DRAM.
        """
        if self.l1s is None:
            return self._access_l2(line_addr, write_mask, fill_on_miss)
        return self._access_l1(core_id, line_addr, write_mask, fill_on_miss)

    # ------------------------------------------------------------------
    def _access_l1(
        self, core_id: int, line_addr: int, write_mask: int, fill_on_miss: bool
    ) -> MemoryTraffic:
        traffic = MemoryTraffic()
        l1 = self.l1s[core_id]
        hit, victim = l1.access(line_addr, write_mask)
        if victim is not None and victim.dirty:
            # L1 victim: OR dirty bits into the L2 copy (Fig. 8).
            l2_victim = self.l2.install(victim.line_addr, victim.dirty_mask)
            self._note_dirty(victim.line_addr)
            if l2_victim is not None:
                self._handle_l2_victim(l2_victim, traffic)
        if not hit:
            l2_hit, l2_victim = self.l2.access(line_addr)
            if l2_victim is not None:
                self._handle_l2_victim(l2_victim, traffic)
            if not l2_hit and fill_on_miss:
                traffic.fills.append(line_addr)
            traffic.demand_hit = False
        return traffic

    def _access_l2(
        self, line_addr: int, write_mask: int, fill_on_miss: bool
    ) -> MemoryTraffic:
        traffic = MemoryTraffic()
        hit, victim = self.l2.access(line_addr, write_mask)
        if write_mask:
            self._note_dirty(line_addr)
        if victim is not None:
            self._handle_l2_victim(victim, traffic)
        if not hit:
            if fill_on_miss:
                traffic.fills.append(line_addr)
            traffic.demand_hit = False
        return traffic

    # ------------------------------------------------------------------
    def _note_dirty(self, line_addr: int) -> None:
        if self.dbi is not None:
            self.dbi.mark_dirty(line_addr)

    def _handle_l2_victim(self, victim: Eviction, traffic: MemoryTraffic) -> None:
        if not victim.dirty:
            if self.dbi is not None:
                self.dbi.mark_clean(victim.line_addr)
            return
        traffic.writebacks.append((victim.line_addr, victim.dirty_mask))
        if self.dbi is None:
            return
        # DRAM-aware writeback: drain dirty companions of the same row.
        for companion in self.dbi.on_writeback(victim.line_addr):
            mask = self.l2.clean_line(companion)
            if mask:
                traffic.writebacks.append((companion, mask))

    # ------------------------------------------------------------------
    def warm_block(
        self,
        core_id: int,
        addrs: Sequence[int],
        masks: Sequence[int],
        start: int,
        end: int,
    ) -> None:
        """Play ``addrs[start:end]`` through the hierarchy without timing.

        The block-array twin of calling :meth:`access` per event and
        discarding the traffic: cache and DBI state evolve identically
        (``fill_on_miss``/``no_fill`` only shape the returned traffic,
        never the state, so the flags are not needed here).  In
        LLC-only mode the per-event :class:`MemoryTraffic` allocation
        and method dispatch are inlined away — warmup replays ~4x the
        LLC line count per :class:`~repro.sim.system.System`, which
        made this the front end's hottest loop before the warm-state
        snapshot cache amortized it.
        """
        if self.l1s is not None:
            access = self.access
            for i in range(start, end):
                access(core_id, addrs[i], write_mask=masks[i])
            return
        l2_access = self.l2.access
        dbi = self.dbi
        if dbi is None:
            for i in range(start, end):
                l2_access(addrs[i], masks[i])
            return
        clean_line = self.l2.clean_line
        for i in range(start, end):
            addr = addrs[i]
            mask = masks[i]
            _, victim = l2_access(addr, mask)
            if mask:
                dbi.mark_dirty(addr)
            if victim is not None:
                if not victim.dirty_mask:
                    dbi.mark_clean(victim.line_addr)
                else:
                    for companion in dbi.on_writeback(victim.line_addr):
                        clean_line(companion)

    # ------------------------------------------------------------------
    def flush_dirty(self) -> List[Tuple[int, int]]:
        """Drain every dirty LLC line (end-of-run writeback traffic)."""
        drained = self.l2.drain_dirty()
        if self.dbi is not None:
            for line_addr, _ in drained:
                self.dbi.mark_clean(line_addr)
        return drained

    @property
    def llc_stats(self) -> CacheStats:
        return self.l2.stats

    def dirty_word_fractions(self) -> dict:
        """Figure 3: distribution of dirty words in evicted LLC lines."""
        return self.l2.stats.dirty_word_fractions()
