"""Set-associative write-back, write-allocate cache with LRU replacement.

Addresses are cache-line indices (byte address // 64); data is not
stored, only tag state and FGD dirty masks, which is all the memory
system needs.

The backing store is array-based: instead of one ``CacheLine`` object
per resident line plus a global ``itertools.count`` LRU clock, each
set keeps a ``tag -> slot`` dict into three flat integer arrays
(line address, dirty mask, LRU stamp) shared by all sets.  A hit is a
dict probe plus two array writes — no object allocation anywhere on the
hot path — and the whole cache state is a handful of picklable arrays,
which is what makes the warm-state snapshot cache
(:mod:`repro.sim.snapshot`) a plain copy.  The flat arrays are
``array('q')`` rather than lists: a snapshot restore copies them with
one ``memcpy`` instead of a pointer-copy-plus-incref per element, and
the buffers are invisible to the cyclic GC — both of which matter when
the batch kernel restores dozens of lanes from one snapshot back to
back.  ``lookup`` and the ``_sets`` compatibility property materialize
:class:`~repro.cache.line.LineView` write-through views on demand for
tests and introspection.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.cache.line import LineView
from repro.dram.geometry import LINE_BYTES

# Oracle-parity declaration enforced by reprolint: the flat tag/mask/
# stamp arrays are the fast path; the LineView write-through views (and
# the ``_sets`` compatibility property) are the object oracle.  The
# module is also on the compiled-engine list
# (repro.engine.COMPILED_MODULES), so its classes avoid constructs
# mypyc cannot compile — see the ``compiled-incompatible`` lint rule.
REPRO_FAST_PATH = True
ORACLE_TWIN = ("repro.cache.line",)
ORACLE_TESTS = (
    "tests/test_engine_identity.py",
    "tests/test_engine_equivalence.py",
)
# COW contract for the aliasing pass (repro.analysis.cowcheck): after a
# cow restore, per-set tag dicts and free lists are shared with the
# snapshot until _own_set privatizes them; every in-place mutation of a
# set's containers must be dominated by an _own_set guard.
REPRO_COW_PROTOCOL = {
    "shared_roots": ("_tags", "_free"),
    "shared_calls": (),
    "privatizers": ("_own_set",),
}


class CacheStats:
    """Hit/miss/eviction counters plus the dirty-word histogram.

    A plain ``__slots__`` class rather than ``@dataclass(slots=True)``:
    the slots-dataclass decorator *replaces* the class object, which
    mypyc cannot compile.  Construction, repr and equality match the
    old dataclass field-for-field.
    """

    __slots__ = (
        "hits", "misses", "evictions", "dirty_evictions", "dirty_word_hist"
    )

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        dirty_evictions: int = 0,
        dirty_word_hist: Optional[Dict[int, int]] = None,
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.dirty_evictions = dirty_evictions
        #: Histogram of dirty-word counts of dirty evicted lines (Fig. 3).
        self.dirty_word_hist: Dict[int, int] = (
            {n: 0 for n in range(1, 9)}
            if dirty_word_hist is None
            else dirty_word_hist
        )

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, "
            f"dirty_evictions={self.dirty_evictions}, "
            f"dirty_word_hist={self.dirty_word_hist})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return (
            self.hits == other.hits
            and self.misses == other.misses
            and self.evictions == other.evictions
            and self.dirty_evictions == other.dirty_evictions
            and self.dirty_word_hist == other.dirty_word_hist
        )

    @property
    def accesses(self) -> int:
        """Total references (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of references that hit (0.0 when untouched)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def dirty_word_fractions(self) -> Dict[int, float]:
        """Normalized dirty-word histogram of evicted lines (Fig. 3)."""
        total = sum(self.dirty_word_hist.values())
        if not total:
            return {n: 0.0 for n in range(1, 9)}
        return {n: c / total for n, c in self.dirty_word_hist.items()}


class Eviction:
    """A victim pushed out of (or cleaned in) a cache level.

    Plain ``__slots__`` class for the same mypyc reason as
    :class:`CacheStats`; allocated on every eviction, so it stays as
    lean as the dataclass it replaces.
    """

    __slots__ = ("line_addr", "dirty_mask")

    def __init__(self, line_addr: int, dirty_mask: int) -> None:
        self.line_addr = line_addr
        self.dirty_mask = dirty_mask

    def __repr__(self) -> str:
        return (
            f"Eviction(line_addr={self.line_addr}, "
            f"dirty_mask={self.dirty_mask})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Eviction):
            return NotImplemented
        return (
            self.line_addr == other.line_addr
            and self.dirty_mask == other.dirty_mask
        )

    @property
    def dirty(self) -> bool:
        """Whether the victim carried any dirty words."""
        return self.dirty_mask != 0


class SetAssociativeCache:
    """LRU set-associative cache over line addresses (array-backed)."""

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        line_bytes: int = LINE_BYTES,
        name: str = "cache",
        lazy_sets: bool = False,
    ) -> None:
        """Size the tag arrays for ``capacity_bytes`` / ``ways``.

        ``lazy_sets=True`` skips allocating the per-set tag dicts and
        free stacks — the dominant construction cost on large caches.
        The caller then guarantees :meth:`restore_state` runs before
        any access (it replaces both structures wholesale, so eager
        allocation would be pure garbage); the System constructor uses
        this when a warm snapshot is already in hand.
        """
        if capacity_bytes % (ways * line_bytes):
            raise ValueError("capacity must be a multiple of ways * line size")
        self.name = name
        self.ways = ways
        self.num_sets = capacity_bytes // (ways * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")
        slots = self.num_sets * ways
        #: Per-set ``tag -> slot`` directory.
        self._tags: List[Dict[int, int]] = (
            [] if lazy_sets else [dict() for _ in range(self.num_sets)]
        )
        #: Flat per-slot state arrays (parallel; indexed by slot).
        zeros = b"" if lazy_sets else bytes(8 * slots)
        self._addr = array("q", zeros)
        self._mask = array("q", zeros)
        self._stamps = array("q", zeros)
        #: Per-set stack of unoccupied slots.
        self._free: List[List[int]] = (
            []
            if lazy_sets
            else [
                list(range((s + 1) * ways - 1, s * ways - 1, -1))
                for s in range(self.num_sets)
            ]
        )
        #: Monotonic LRU clock (plain int: picklable, snapshot-friendly).
        self._stamp_counter = 0
        #: Copy-on-write restore bookkeeping: ``None`` when every set's
        #: tag dict / free stack is privately owned (the eager default),
        #: else the (initially empty) indices privatized so far — every
        #: other set still aliases a shared snapshot.
        self._cow_owned: Optional[set] = None
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def _sets(self) -> List[Dict[int, LineView]]:
        """Compatibility view: per-set ``tag -> LineView`` dicts.

        Materialized on demand for tests and reference models; the
        views write through to the state arrays, so mutating a view
        mutates the cache.
        """
        return [
            {tag: LineView(self, slot) for tag, slot in tags.items()}
            for tags in self._tags
        ]

    def lookup(self, line_addr: int) -> Optional[LineView]:
        """Probe without updating LRU or stats."""
        slot = self._tags[line_addr % self.num_sets].get(line_addr // self.num_sets)
        return None if slot is None else LineView(self, slot)

    def _own_set(self, set_idx: int) -> Dict[int, int]:
        """Privatize one set before mutating its dict/free stack.

        After a copy-on-write restore (``restore_state(..., cow=True)``)
        the per-set tag dicts and free stacks still alias the shared
        snapshot; the first structural mutation of a set copies just
        that set.  Reads never need ownership, and the hit path only
        touches the (always private) flat arrays, so the check sits on
        the miss/evict/invalidate paths only.
        """
        owned = self._cow_owned
        if owned is not None and set_idx not in owned:
            self._tags[set_idx] = dict(self._tags[set_idx])
            self._free[set_idx] = list(self._free[set_idx])
            owned.add(set_idx)
        return self._tags[set_idx]

    # ------------------------------------------------------------------
    def access(
        self, line_addr: int, write_mask: int = 0
    ) -> Tuple[bool, Optional[Eviction]]:
        """Reference a line; allocate on miss; return (hit, eviction).

        ``write_mask`` non-zero marks the access as a store touching
        those words.  The eviction (if any) carries the victim's FGD
        mask; clean victims are returned too so callers can maintain
        inclusive/exclusive metadata (e.g. the DBI).
        """
        # Fully inlined: this is the hottest cache call.
        set_idx = line_addr % self.num_sets
        tags = self._tags[set_idx]
        slot = tags.get(line_addr // self.num_sets)
        stats = self.stats
        self._stamp_counter = stamp = self._stamp_counter + 1
        if slot is not None:
            stats.hits += 1
            self._stamps[slot] = stamp
            if write_mask:
                self._mask[slot] |= write_mask
            return (True, None)
        stats.misses += 1
        victim: Optional[Eviction] = None
        if self._cow_owned is not None:
            tags = self._own_set(set_idx)
        if len(tags) >= self.ways:
            victim, slot = self._evict_slot(tags)
        else:
            slot = self._free[set_idx].pop()
        tags[line_addr // self.num_sets] = slot
        self._addr[slot] = line_addr
        self._mask[slot] = write_mask
        self._stamps[slot] = stamp
        return (False, victim)

    def _evict_slot(self, tags: Dict[int, int]) -> Tuple[Eviction, int]:
        """Drop the LRU line of a full set; return (victim, freed slot)."""
        stamps = self._stamps
        victim_tag, slot = min(tags.items(), key=lambda kv: stamps[kv[1]])
        del tags[victim_tag]
        stats = self.stats
        stats.evictions += 1
        mask = self._mask[slot]
        if mask:
            stats.dirty_evictions += 1
            stats.dirty_word_hist[bin(mask).count("1")] += 1
        return Eviction(line_addr=self._addr[slot], dirty_mask=mask), slot

    def install(self, line_addr: int, dirty_mask: int = 0) -> Optional[Eviction]:
        """Insert a line (e.g. absorbed from an upper level)."""
        set_idx = line_addr % self.num_sets
        tags = self._tags[set_idx]
        tag = line_addr // self.num_sets
        slot = tags.get(tag)
        self._stamp_counter = stamp = self._stamp_counter + 1
        if slot is not None:
            self._mask[slot] |= dirty_mask
            self._stamps[slot] = stamp
            return None
        victim: Optional[Eviction] = None
        if self._cow_owned is not None:
            tags = self._own_set(set_idx)
        if len(tags) >= self.ways:
            victim, slot = self._evict_slot(tags)
        else:
            slot = self._free[set_idx].pop()
        tags[tag] = slot
        self._addr[slot] = line_addr
        self._mask[slot] = dirty_mask
        self._stamps[slot] = stamp
        return victim

    def clean_line(self, line_addr: int) -> int:
        """Clear a resident line's dirty bits; returns the old mask."""
        slot = self._tags[line_addr % self.num_sets].get(line_addr // self.num_sets)
        if slot is None:
            return 0
        mask = self._mask[slot]
        self._mask[slot] = 0
        return mask

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        """Drop a line; returns it (with dirty state) if present."""
        set_idx = line_addr % self.num_sets
        if self._cow_owned is not None:
            self._own_set(set_idx)
        slot = self._tags[set_idx].pop(line_addr // self.num_sets, None)
        if slot is None:
            return None
        self._free[set_idx].append(slot)
        return Eviction(line_addr=self._addr[slot], dirty_mask=self._mask[slot])

    def resident_lines(self) -> int:
        """Number of lines currently resident across all sets."""
        return sum(len(tags) for tags in self._tags)

    # ------------------------------------------------------------------
    def drain_dirty(self) -> List[Tuple[int, int]]:
        """Clean every dirty line; returns ``(line_addr, old_mask)``.

        Iterates sets in index order and lines in residency
        (dict-insertion) order — the same order the object-backed
        implementation produced — so end-of-run writeback traffic is
        reproducible.
        """
        drained: List[Tuple[int, int]] = []
        addr, mask = self._addr, self._mask
        for tags in self._tags:
            for slot in tags.values():
                if mask[slot]:
                    drained.append((addr[slot], mask[slot]))
                    mask[slot] = 0
        return drained

    # ------------------------------------------------------------------
    def export_state(self) -> tuple:
        """Snapshot the full tag/dirty/LRU state as picklable copies.

        The returned tuple is independent of the live cache (plain
        dict/array/list copies), so it can sit in the warm-state
        snapshot cache while Systems restored from it keep mutating.
        """
        return (
            [dict(tags) for tags in self._tags],
            self._addr[:],
            self._mask[:],
            self._stamps[:],
            [list(free) for free in self._free],
            self._stamp_counter,
        )

    def restore_state(self, state: tuple, cow: bool = False) -> None:
        """Restore-by-copy a state captured by :meth:`export_state`.

        Dict-insertion order is part of the copy, so a restored cache
        evolves bit-identically to the one that was snapshotted
        (eviction scans iterate the tag dicts).

        ``cow=True`` selects the copy-on-write restore the batch kernel
        uses: the flat arrays are still plainly copied (one ``memcpy``
        each) but the per-set tag dicts and free stacks initially
        *alias* the snapshot and are privatized one set at a time on
        first mutation (:meth:`_own_set`).  Observable behaviour is
        identical — the snapshot rows are only ever read while shared —
        it just skips the per-set dict/list copies that dominate eager
        restore, which matters when many lanes restore from one
        snapshot at once.  The eager default remains the oracle path.

        Pre-``array('q')`` snapshots (plain lists, e.g. aged on-disk
        snapshot files) restore transparently: the arrays are rebuilt
        from the lists element-wise.
        """
        tags, addr, mask, stamps, free, counter = state
        if len(tags) != self.num_sets or len(addr) != self.num_sets * self.ways:
            raise ValueError("snapshot geometry does not match this cache")
        if cow:
            self._tags = list(tags)
            self._free = list(free)
            self._cow_owned = set()
        else:
            self._tags = [dict(t) for t in tags]
            self._free = [list(f) for f in free]
            self._cow_owned = None
        self._addr = addr[:] if isinstance(addr, array) else array("q", addr)
        self._mask = mask[:] if isinstance(mask, array) else array("q", mask)
        self._stamps = (
            stamps[:] if isinstance(stamps, array) else array("q", stamps)
        )
        self._stamp_counter = counter
