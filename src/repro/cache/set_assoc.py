"""Set-associative write-back, write-allocate cache with LRU replacement.

Addresses are cache-line indices (byte address // 64); data is not
stored, only tag state and FGD dirty masks, which is all the memory
system needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.line import CacheLine
from repro.dram.geometry import LINE_BYTES


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    #: Histogram of dirty-word counts of dirty evicted lines (Fig. 3).
    dirty_word_hist: Dict[int, int] = field(
        default_factory=lambda: {n: 0 for n in range(1, 9)}
    )

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def dirty_word_fractions(self) -> Dict[int, float]:
        """Normalized dirty-word histogram of evicted lines (Fig. 3)."""
        total = sum(self.dirty_word_hist.values())
        if not total:
            return {n: 0.0 for n in range(1, 9)}
        return {n: c / total for n, c in self.dirty_word_hist.items()}


@dataclass(slots=True)
class Eviction:
    """A victim pushed out of (or cleaned in) a cache level."""

    line_addr: int
    dirty_mask: int

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0


class SetAssociativeCache:
    """LRU set-associative cache over line addresses."""

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        line_bytes: int = LINE_BYTES,
        name: str = "cache",
    ) -> None:
        if capacity_bytes % (ways * line_bytes):
            raise ValueError("capacity must be a multiple of ways * line size")
        self.name = name
        self.ways = ways
        self.num_sets = capacity_bytes // (ways * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._stamp = itertools.count()
        self.stats = CacheStats()

    def _set_and_tag(self, line_addr: int) -> Tuple[Dict[int, CacheLine], int]:
        return self._sets[line_addr % self.num_sets], line_addr // self.num_sets

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Probe without updating LRU or stats."""
        cache_set, tag = self._set_and_tag(line_addr)
        return cache_set.get(tag)

    def access(
        self, line_addr: int, write_mask: int = 0
    ) -> Tuple[bool, Optional[Eviction]]:
        """Reference a line; allocate on miss; return (hit, eviction).

        ``write_mask`` non-zero marks the access as a store touching
        those words.  The eviction (if any) carries the victim's FGD
        mask; clean victims are returned too so callers can maintain
        inclusive/exclusive metadata (e.g. the DBI).
        """
        # _set_and_tag inlined: this is the hottest cache call.
        cache_set = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        line = cache_set.get(tag)
        hit = line is not None
        victim: Optional[Eviction] = None
        stats = self.stats
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
            if len(cache_set) >= self.ways:
                victim = self._evict(cache_set)
            line = CacheLine(line_addr=line_addr)
            cache_set[tag] = line
        line.lru_stamp = next(self._stamp)
        if write_mask:
            line.mark_written(write_mask)
        return (hit, victim)

    def _evict(self, cache_set: Dict[int, CacheLine]) -> Eviction:
        victim_tag = min(cache_set, key=lambda t: cache_set[t].lru_stamp)
        victim = cache_set.pop(victim_tag)
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.dirty_evictions += 1
            self.stats.dirty_word_hist[victim.dirty_words] += 1
        return Eviction(line_addr=victim.line_addr, dirty_mask=victim.dirty_mask)

    def install(self, line_addr: int, dirty_mask: int = 0) -> Optional[Eviction]:
        """Insert a line (e.g. absorbed from an upper level)."""
        cache_set, tag = self._set_and_tag(line_addr)
        line = cache_set.get(tag)
        if line is not None:
            line.absorb(dirty_mask)
            line.lru_stamp = next(self._stamp)
            return None
        victim = self._evict(cache_set) if len(cache_set) >= self.ways else None
        new_line = CacheLine(line_addr=line_addr, dirty_mask=dirty_mask)
        new_line.lru_stamp = next(self._stamp)
        cache_set[tag] = new_line
        return victim

    def clean_line(self, line_addr: int) -> int:
        """Clear a resident line's dirty bits; returns the old mask."""
        line = self.lookup(line_addr)
        if line is None:
            return 0
        return line.clean()

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        """Drop a line; returns it (with dirty state) if present."""
        cache_set, tag = self._set_and_tag(line_addr)
        line = cache_set.pop(tag, None)
        if line is None:
            return None
        return Eviction(line_addr=line.line_addr, dirty_mask=line.dirty_mask)

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
