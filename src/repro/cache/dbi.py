"""Dirty-Block Index (DBI) for DRAM-aware writeback (Section 5.2.3).

The DBI separates dirty-bit tracking from the cache tag store and
organizes it by DRAM row: when any dirty line of a row is written back,
the other dirty lines of the same row are proactively written back too
(and left resident-clean in the cache), so the writes can share one row
activation.  The paper combines this with PRA to study the interaction:
DBI raises the write row-hit rate but also raises PRA's false-hit
pressure (the proactive burst arrives with heterogeneous masks).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Set, Tuple, Union

RowOf = Callable[[int], Hashable]

#: One row's dirty lines: a private mutable set, or — after a
#: copy-on-write restore — the snapshot's shared immutable tuple,
#: privatized to a set on first mutation.  All readers are
#: order-insensitive (membership, ``len``, sorted iteration), so the
#: two representations are observationally identical.
RowLines = Union[Set[int], Tuple[int, ...]]

# COW contract for the aliasing pass (repro.analysis.cowcheck): after
# restore_rows(cow=True) the per-row values are the snapshot's shared
# tuples; writers must thaw a row to a private set (lines = set(lines))
# before mutating it in place.
REPRO_COW_PROTOCOL = {
    "shared_roots": ("_rows",),
    "shared_calls": (),
    "privatizers": (),
}


class DirtyBlockIndex:
    """Row-organized registry of dirty line addresses.

    ``row_of`` maps a cache-line address to its DRAM-row identity (the
    address-mapper's ``row_key``).  ``max_writebacks`` bounds how many
    companion lines one trigger may drain (the paper drains the whole
    row; a bound keeps pathological rows from flooding the write queue).
    """

    def __init__(self, row_of: RowOf, max_writebacks: int = 16) -> None:
        if max_writebacks < 1:
            raise ValueError("max_writebacks must be >= 1")
        self.row_of = row_of
        self.max_writebacks = max_writebacks
        self._rows: Dict[Hashable, RowLines] = {}
        self.proactive_writebacks = 0
        self.triggers = 0

    def __len__(self) -> int:
        return sum(len(lines) for lines in self._rows.values())

    def mark_dirty(self, line_addr: int) -> None:
        """Record a line as dirty under its DRAM row."""
        key = self.row_of(line_addr)
        lines = self._rows.get(key)
        if lines is None:
            self._rows[key] = {line_addr}
            return
        if isinstance(lines, tuple):
            # Shared snapshot row (cow restore): privatize on mutation.
            lines = set(lines)
            self._rows[key] = lines
        lines.add(line_addr)

    def mark_clean(self, line_addr: int) -> None:
        """Drop a line from the dirty registry (no-op if absent)."""
        key = self.row_of(line_addr)
        lines = self._rows.get(key)
        if lines is None:
            return
        if isinstance(lines, tuple):
            if line_addr not in lines:
                return
            lines = set(lines)
            self._rows[key] = lines
        lines.discard(line_addr)
        if not lines:
            del self._rows[key]

    def is_dirty(self, line_addr: int) -> bool:
        lines = self._rows.get(self.row_of(line_addr))
        return bool(lines) and line_addr in lines

    def dirty_lines_in_row(self, line_addr: int) -> List[int]:
        """Dirty companions of ``line_addr`` in its DRAM row (sorted)."""
        lines: RowLines = self._rows.get(self.row_of(line_addr), ())
        return sorted(addr for addr in lines if addr != line_addr)

    def export_rows(self) -> Dict[Hashable, Tuple[int, ...]]:
        """Snapshot the dirty registry as picklable sorted tuples."""
        return {key: tuple(sorted(lines)) for key, lines in self._rows.items()}

    def restore_rows(
        self, rows: Dict[Hashable, Tuple[int, ...]], cow: bool = False
    ) -> None:
        """Restore-by-copy a registry captured by :meth:`export_rows`.

        ``cow=True`` (the batch kernel's path) copies only the top-level
        dict and keeps the snapshot's per-row tuples shared; a row is
        privatized to a set on its first ``mark_dirty``/``mark_clean``.
        Every reader is order-insensitive, so this is observationally
        identical to the eager default, which stays the oracle path.
        """
        if cow:
            self._rows = dict(rows)
        else:
            self._rows = {key: set(lines) for key, lines in rows.items()}

    def on_writeback(self, line_addr: int) -> List[int]:
        """A dirty line is being written back: pick companions to drain.

        Returns the companion line addresses (up to ``max_writebacks``)
        and removes them and the trigger line from the index.  The
        caller is responsible for cleaning them in the cache and
        enqueueing the DRAM writes.
        """
        self.triggers += 1
        companions = self.dirty_lines_in_row(line_addr)[: self.max_writebacks]
        self.mark_clean(line_addr)
        for addr in companions:
            self.mark_clean(addr)
        self.proactive_writebacks += len(companions)
        return companions
