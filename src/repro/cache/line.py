"""Cache lines with fine-grained dirty bits (FGD, Section 4.1.4).

The 64 B data field of a line is logically divided into eight 8 B word
segments; each has its own dirty bit.  The whole-line dirty state is
the OR of the word dirty bits, so FGD adds 7 bits per line on top of
the conventional single dirty bit.

Two representations live here:

* :class:`CacheLine` — a standalone value object (tests, examples,
  reference models);
* :class:`LineView` — a write-through window onto one slot of an
  array-backed :class:`~repro.cache.set_assoc.SetAssociativeCache`.
  The cache itself stores no line objects at all (its state is flat
  integer arrays); views are materialized only for introspection
  (``lookup``, ``_sets``) and forward every read/write to the arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cache.set_assoc import SetAssociativeCache

from repro.dram.geometry import FULL_MASK, WORDS_PER_LINE


@dataclass(slots=True)
class CacheLine:
    """One cache line: tag state plus the FGD word-dirty mask.

    ``slots=True``: line objects are allocated in bulk by reference
    models and tests, so the dict-free layout keeps them cheap.  The
    production cache no longer stores these — see :class:`LineView`.
    """

    line_addr: int
    dirty_mask: int = 0
    #: Monotonic LRU stamp maintained by the owning cache.
    lru_stamp: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.dirty_mask <= FULL_MASK:
            raise ValueError(f"dirty mask out of range: {self.dirty_mask:#x}")

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0

    @property
    def dirty_words(self) -> int:
        """Number of dirty 8 B words (1..8 when dirty, 0 when clean)."""
        return bin(self.dirty_mask).count("1")

    def mark_written(self, word_mask: int) -> None:
        """Record a store touching the words in ``word_mask``."""
        if not 0 < word_mask <= FULL_MASK:
            raise ValueError(f"store word mask out of range: {word_mask:#x}")
        self.dirty_mask |= word_mask

    def absorb(self, other_mask: int) -> None:
        """OR-merge dirty bits from an evicted upper-level line."""
        if not 0 <= other_mask <= FULL_MASK:
            raise ValueError(f"mask out of range: {other_mask:#x}")
        self.dirty_mask |= other_mask

    def clean(self) -> int:
        """Clear all dirty bits (after writeback); returns the old mask."""
        mask, self.dirty_mask = self.dirty_mask, 0
        return mask


class LineView:
    """Write-through view of one resident line in an array-backed cache.

    Presents the :class:`CacheLine` interface (``line_addr``,
    ``dirty_mask``, ``lru_stamp``, ``dirty``, ``dirty_words``,
    ``mark_written``, ``absorb``, ``clean``) while reading and writing
    the owning cache's flat state arrays, so mutations through the view
    are mutations of the cache.
    """

    __slots__ = ("_cache", "_slot")

    def __init__(self, cache: "SetAssociativeCache", slot: int) -> None:
        """Bind the view to ``slot`` of ``cache``'s state arrays."""
        self._cache = cache
        self._slot = slot

    @property
    def line_addr(self) -> int:
        """Line address resident in the viewed slot."""
        return self._cache._addr[self._slot]

    @property
    def dirty_mask(self) -> int:
        """FGD word-dirty mask of the viewed line."""
        return self._cache._mask[self._slot]

    @dirty_mask.setter
    def dirty_mask(self, value: int) -> None:
        if not 0 <= value <= FULL_MASK:
            raise ValueError(f"dirty mask out of range: {value:#x}")
        self._cache._mask[self._slot] = value

    @property
    def lru_stamp(self) -> int:
        """Monotonic LRU stamp of the viewed line."""
        return self._cache._stamps[self._slot]

    @lru_stamp.setter
    def lru_stamp(self, value: int) -> None:
        self._cache._stamps[self._slot] = value

    @property
    def dirty(self) -> bool:
        """Whether any word of the line is dirty."""
        return self._cache._mask[self._slot] != 0

    @property
    def dirty_words(self) -> int:
        """Number of dirty 8 B words (1..8 when dirty, 0 when clean)."""
        return bin(self._cache._mask[self._slot]).count("1")

    def mark_written(self, word_mask: int) -> None:
        """Record a store touching the words in ``word_mask``."""
        if not 0 < word_mask <= FULL_MASK:
            raise ValueError(f"store word mask out of range: {word_mask:#x}")
        self._cache._mask[self._slot] |= word_mask

    def absorb(self, other_mask: int) -> None:
        """OR-merge dirty bits from an evicted upper-level line."""
        if not 0 <= other_mask <= FULL_MASK:
            raise ValueError(f"mask out of range: {other_mask:#x}")
        self._cache._mask[self._slot] |= other_mask

    def clean(self) -> int:
        """Clear all dirty bits (after writeback); returns the old mask."""
        mask = self._cache._mask[self._slot]
        self._cache._mask[self._slot] = 0
        return mask

    def __repr__(self) -> str:
        return (
            f"LineView(line_addr={self.line_addr}, "
            f"dirty_mask={self.dirty_mask:#x}, lru_stamp={self.lru_stamp})"
        )


def word_mask_for_store(offset_bytes: int, size_bytes: int) -> int:
    """Dirty-word mask for a store of ``size_bytes`` at ``offset_bytes``.

    Convenience for trace generators: computes which of the eight 8 B
    word segments a store touches.
    """
    if size_bytes <= 0:
        raise ValueError("store size must be positive")
    if offset_bytes < 0 or offset_bytes + size_bytes > WORDS_PER_LINE * 8:
        raise ValueError("store does not fit in a 64 B line")
    first = offset_bytes // 8
    last = (offset_bytes + size_bytes - 1) // 8
    mask = 0
    for word in range(first, last + 1):
        mask |= 1 << word
    return mask
