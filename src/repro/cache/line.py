"""Cache lines with fine-grained dirty bits (FGD, Section 4.1.4).

The 64 B data field of a line is logically divided into eight 8 B word
segments; each has its own dirty bit.  The whole-line dirty state is
the OR of the word dirty bits, so FGD adds 7 bits per line on top of
the conventional single dirty bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import FULL_MASK, WORDS_PER_LINE


@dataclass(slots=True)
class CacheLine:
    """One cache line: tag state plus the FGD word-dirty mask.

    ``slots=True``: one line object exists per resident cache line and
    one is allocated per miss, so the dict-free layout measurably cuts
    both memory and allocation time on the simulator's cache path.
    """

    line_addr: int
    dirty_mask: int = 0
    #: Monotonic LRU stamp maintained by the owning cache.
    lru_stamp: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.dirty_mask <= FULL_MASK:
            raise ValueError(f"dirty mask out of range: {self.dirty_mask:#x}")

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0

    @property
    def dirty_words(self) -> int:
        """Number of dirty 8 B words (1..8 when dirty, 0 when clean)."""
        return bin(self.dirty_mask).count("1")

    def mark_written(self, word_mask: int) -> None:
        """Record a store touching the words in ``word_mask``."""
        if not 0 < word_mask <= FULL_MASK:
            raise ValueError(f"store word mask out of range: {word_mask:#x}")
        self.dirty_mask |= word_mask

    def absorb(self, other_mask: int) -> None:
        """OR-merge dirty bits from an evicted upper-level line."""
        if not 0 <= other_mask <= FULL_MASK:
            raise ValueError(f"mask out of range: {other_mask:#x}")
        self.dirty_mask |= other_mask

    def clean(self) -> int:
        """Clear all dirty bits (after writeback); returns the old mask."""
        mask, self.dirty_mask = self.dirty_mask, 0
        return mask


def word_mask_for_store(offset_bytes: int, size_bytes: int) -> int:
    """Dirty-word mask for a store of ``size_bytes`` at ``offset_bytes``.

    Convenience for trace generators: computes which of the eight 8 B
    word segments a store touches.
    """
    if size_bytes <= 0:
        raise ValueError("store size must be positive")
    if offset_bytes < 0 or offset_bytes + size_bytes > WORDS_PER_LINE * 8:
        raise ValueError("store does not fit in a 64 B line")
    first = offset_bytes // 8
    last = (offset_bytes + size_bytes - 1) // 8
    mask = 0
    for word in range(first, last + 1):
        mask |= 1 << word
    return mask
