"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show available workloads, schemes and row policies.
``run``
    Simulate one (workload, scheme, policy) and print the summary.
``compare``
    Run several schemes on one workload and print normalized results.
``sweep``
    Run a grid and export CSV/JSON (``--pool N`` for a persistent
    warm worker pool, ``--workers N`` for a throwaway process pool,
    ``--batch N`` for the lane-parallel batch kernel).
``bench``
    Drive a whole figure suite (scheme x workload grid) through one
    persistent pool and print points/sec plus normalized summaries.
``lint``
    Run the full static layer — reprolint (including the v2 dataflow
    passes) plus the strict typing gate — with ``--format json`` /
    ``--format github`` outputs for CI.
``serve``
    Run the long-lived sweep service (HTTP/JSON job API, shared
    content-addressed result store, checkpointed journal) until
    interrupted.
``submit``
    Submit a sweep to a running service, wait for it, and print (or
    export) the rows — identical grid points across jobs and clients
    are computed once.
``results``
    Fetch a job's status/rows or a single cached point row from a
    running service.

Examples::

    python -m repro list
    python -m repro run --workload GUPS --scheme PRA --events 4000
    python -m repro compare --workload MIX1 --schemes Baseline FGA Half-DRAM PRA
    python -m repro sweep --schemes Baseline PRA --workloads GUPS MIX1 \
        --pool 4 --out grid.csv
    python -m repro bench --suite fig12 --pool 4
    python -m repro lint --format github
    python -m repro serve --dir /var/tmp/sweeps --port 8032
    python -m repro submit --port 8032 --schemes Baseline PRA \
        --workloads GUPS MIX1 --out grid.csv
    python -m repro results --port 8032 --job <job-id>
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:
    from repro.sim.config import SystemConfig

from repro.controller.policies import RowPolicy
from repro.core.schemes import ALL_SCHEMES, BASELINE, by_name
from repro.sim.runner import ExperimentRunner
from repro.workloads.mixes import ALL_WORKLOADS

_POLICIES = {
    "relaxed": RowPolicy.RELAXED_CLOSE,
    "restricted": RowPolicy.RESTRICTED_CLOSE,
    "open": RowPolicy.OPEN_PAGE,
}

def _available_cpus() -> int:
    """CPUs this process may use (monkeypatchable in tests)."""
    return os.cpu_count() or 1


def _check_worker_budget(flag: str, requested: int) -> None:
    """Reject worker counts that oversubscribe the machine.

    Simulation workers are CPU-bound: more workers than cores just
    adds context-switch and IPC overhead while *looking* parallel, so
    an explicit over-ask is almost certainly a mistake.  Raises
    ``ValueError`` (→ exit code 2 with a clean message) rather than
    silently clamping.
    """
    cpus = _available_cpus()
    if requested > cpus:
        raise ValueError(
            f"{flag} {requested} exceeds the {cpus} available CPU(s); "
            f"use {flag} {cpus} or lower (lane batching via 'sweep "
            "--batch N' or '--batch auto' scales without extra CPUs)"
        )


def _batch_arg(value: str) -> "int | str":
    """``--batch`` argument: a positive integer or the word ``auto``."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        lanes = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --batch value {value!r}: expected a positive "
            "integer or 'auto'"
        ) from None
    return lanes


#: ``repro bench`` suites: scheme set per figure; every suite crosses
#: its schemes with all 14 evaluation workloads except ``quick``.
_BENCH_SUITES = {
    "quick": (["Baseline", "PRA"], ["GUPS", "MIX1"]),
    "fig12": (["Baseline", "FGA", "Half-DRAM", "PRA"], None),
    "fig13": (["Baseline", "FGA", "Half-DRAM", "PRA"], None),
    "fig15": (["Baseline", "DBI", "PRA", "DBI+PRA"], None),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial Row Activation (HPCA 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, schemes and policies")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="MIX1", help="one of the 14 workloads")
        p.add_argument("--events", type=int, default=4000,
                       help="memory instructions per core")
        p.add_argument("--policy", choices=sorted(_POLICIES), default="relaxed")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--profile", action="store_true",
                       help="run under cProfile, print top-25 by cumulative time")
        p.add_argument("--sanitize", action="store_true",
                       help="enable the runtime sanitizer (protocol checkers "
                       "+ invariant verification; same as REPRO_SANITIZE=1)")

    run_p = sub.add_parser("run", help="simulate one configuration")
    add_common(run_p)
    run_p.add_argument("--scheme", default="PRA", help="scheme name (see list)")

    cmp_p = sub.add_parser("compare", help="compare schemes on one workload")
    add_common(cmp_p)
    cmp_p.add_argument(
        "--schemes",
        nargs="+",
        default=["Baseline", "FGA", "Half-DRAM", "PRA"],
        help="scheme names to compare (baseline added automatically)",
    )

    sweep_p = sub.add_parser("sweep", help="run a grid and export CSV/JSON")
    sweep_p.add_argument("--workloads", nargs="+", default=["GUPS", "MIX1"])
    sweep_p.add_argument("--schemes", nargs="+", default=["Baseline", "PRA"])
    sweep_p.add_argument("--policies", nargs="+", choices=sorted(_POLICIES),
                         default=["relaxed"])
    sweep_p.add_argument("--events", type=int, default=4000)
    sweep_p.add_argument("--seed", type=int, default=1)
    sweep_p.add_argument("--out", required=True,
                         help="output path (.csv or .json)")
    sweep_p.add_argument("--workers", type=int, default=None, metavar="N",
                         help="fan grid points over a throwaway process pool")
    sweep_p.add_argument("--pool", type=int, default=0, metavar="N",
                         help="run the grid on a persistent pool of N warm "
                         "workers (fingerprint-grouped scheduling)")
    sweep_p.add_argument("--batch", type=_batch_arg, default=None, metavar="N",
                         help="advance up to N grid points per shared event "
                         "loop (lane-parallel batch kernel); combines with "
                         "--pool to ship whole lane groups per worker task; "
                         "'auto' sizes the lane count from the grid and "
                         "available memory")
    sweep_p.add_argument("--profile", action="store_true",
                         help="run under cProfile, print top-25 by cumulative time")

    bench_p = sub.add_parser(
        "bench", help="drive a whole figure suite through one warm pool"
    )
    bench_p.add_argument("--suite", choices=sorted(_BENCH_SUITES),
                         default="fig12",
                         help="which figure's (scheme x workload) grid to run")
    bench_p.add_argument("--events", type=int, default=2000,
                         help="memory instructions per core")
    bench_p.add_argument("--policy", choices=sorted(_POLICIES), default="relaxed")
    bench_p.add_argument("--seed", type=int, default=1)
    bench_p.add_argument("--pool", type=int, default=None, metavar="N",
                         help="persistent pool workers (0 = serial in-process; "
                         "default: min(2, available CPUs))")
    bench_p.add_argument("--sanitize", action="store_true",
                         help="enable the runtime sanitizer")

    serve_p = sub.add_parser(
        "serve", help="run the long-lived sweep service (HTTP/JSON API)"
    )
    serve_p.add_argument("--dir", required=True, dest="root",
                         help="service state directory (result store, "
                         "journal, warm snapshots)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="listen port (0 = kernel-chosen; see "
                         "--port-file)")
    serve_p.add_argument("--port-file", default=None, metavar="PATH",
                         help="write the bound port here once listening "
                         "(atomic; lets scripts await a port=0 service)")
    serve_p.add_argument("--pools", type=int, default=1, metavar="K",
                         help="independent warm SimPools to shard "
                         "fingerprint groups across")
    serve_p.add_argument("--workers-per-pool", type=int, default=1,
                         metavar="W", help="worker processes per pool")
    serve_p.add_argument("--max-inflight", type=int, default=2, metavar="N",
                         help="tasks enqueued per worker before backpressure")

    def add_service_endpoint(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8032)
        p.add_argument("--port-file", default=None, metavar="PATH",
                       help="read the service port from PATH (overrides "
                       "--port; pairs with 'serve --port-file')")

    submit_p = sub.add_parser(
        "submit", help="submit a sweep to a running service"
    )
    add_service_endpoint(submit_p)
    submit_p.add_argument("--workloads", nargs="+", default=["GUPS", "MIX1"])
    submit_p.add_argument("--schemes", nargs="+", default=["Baseline", "PRA"])
    submit_p.add_argument("--policies", nargs="+", choices=sorted(_POLICIES),
                          default=None)
    submit_p.add_argument("--ecc-chips", nargs="+", type=int, default=None,
                          help="ecc_chips axis values (0 and/or 1)")
    submit_p.add_argument("--events", type=int, default=4000)
    submit_p.add_argument("--seed", type=int, default=1)
    submit_p.add_argument("--warmup", type=int, default=None,
                          help="warmup events per core (default: resolved "
                          "per workload)")
    submit_p.add_argument("--llc-bytes", type=int, default=None)
    submit_p.add_argument("--no-wait", action="store_true",
                          help="print the job id and return without waiting")
    submit_p.add_argument("--out", default=None,
                          help="export rows to .csv or .json once done")

    results_p = sub.add_parser(
        "results", help="fetch job status/rows or one cached point row"
    )
    add_service_endpoint(results_p)
    results_p.add_argument("--job", default=None, metavar="JOB_ID",
                           help="job to report (status, and rows when done)")
    results_p.add_argument("--digest", default=None, metavar="DIGEST",
                           help="single point digest to fetch")
    results_p.add_argument("--out", default=None,
                           help="export job rows to .csv or .json")

    lint_p = sub.add_parser(
        "lint", help="run reprolint + the strict typing gate"
    )
    lint_p.add_argument("paths", nargs="*", default=[],
                        help="files or trees to lint (default: src/ tests/)")
    lint_p.add_argument("--select", nargs="+", metavar="RULE",
                        help="only report these reprolint rule ids")
    lint_p.add_argument("--format", choices=("text", "json", "github"),
                        default="text", dest="fmt",
                        help="finding output format: human text, a JSON "
                        "report document, or GitHub workflow annotations")
    lint_p.add_argument("--json-out", metavar="PATH", default=None,
                        help="additionally write the JSON report to PATH "
                        "(CI artifact), independent of --format")
    lint_p.add_argument("--no-typegate", action="store_true",
                        help="skip the mypy+ruff gate (reprolint only)")
    lint_p.add_argument("--lax-types", action="store_true",
                        help="missing mypy/ruff skip instead of failing "
                        "(default is the CI-strict behaviour)")
    return parser


def cmd_list() -> int:
    """List workloads, schemes and row policies."""
    print("workloads:")
    for name, wl in ALL_WORKLOADS.items():
        print(f"  {name:<12} {', '.join(wl.app_names)}")
    print("schemes:")
    for name in ALL_SCHEMES:
        print(f"  {name}")
    print("policies:")
    for name, policy in _POLICIES.items():
        print(f"  {name:<12} {policy.value}")
    return 0


def _base_config(args: argparse.Namespace) -> "SystemConfig":
    """Base :class:`SystemConfig` honouring the ``--sanitize`` flag."""
    from repro.sim.config import SystemConfig

    return SystemConfig(sanitize=getattr(args, "sanitize", False))


def cmd_run(args: argparse.Namespace) -> int:
    """Simulate one configuration and print its summary report."""
    from repro.stats.report import format_breakdown

    runner = ExperimentRunner(
        events_per_core=args.events, seed=args.seed,
        base_config=_base_config(args),
    )
    scheme = by_name(args.scheme)
    policy = _POLICIES[args.policy]
    result = runner.run(args.workload, scheme, policy)
    print(f"{args.workload} / {scheme.name} / {policy.value}")
    for key, value in result.summary().items():
        print(f"  {key:<24}{value:>14.4f}")
    print("  activation granularity mix:")
    for g, frac in result.granularity_fractions().items():
        if frac:
            print(f"    {g}/8 row{'':<14}{frac:>14.3f}")
    print()
    print(format_breakdown(result.power.fractions(), title="  power breakdown"))
    reads = result.controller.reads.latency_hist
    if reads.samples:
        print(f"  read latency (cycles): p50 {reads.percentile(50):.0f}  "
              f"p95 {reads.percentile(95):.0f}  p99 {reads.percentile(99):.0f}  "
              f"max {reads.max_value}")
    if getattr(args, "profile", False):
        _print_phase_counters(result.controller)
    return 0


def _print_phase_counters(stats) -> None:
    """Scheduler phase counters for ``--profile`` runs.

    cProfile cannot see inside mypyc-compiled frames, so under the
    compiled engine a profile of the hot path would come back empty.
    The controller therefore counts its scheduling phases directly
    (``sched_passes`` plus the per-phase command counters), and this
    table — identical on both engines — is where ``--profile`` surfaces
    them.
    """
    passes = stats.sched_passes
    activations = stats.total_activations
    # Streaks commit N column commands in one scheduling decision, so
    # decisions = singles + streaks = served - streak_commands + streaks.
    column_decisions = stats.total_served - stats.streak_commands + stats.streaks
    issued = activations + column_decisions + stats.precharges + stats.refreshes
    print()
    print("  scheduler phases (both engines; cProfile is blind in "
          "compiled frames):")
    rows = [
        ("scheduling passes", passes, "past the command-bus gate"),
        ("decisions issued", issued,
         f"{issued / passes:.3f} per pass" if passes else ""),
        ("  activations", activations, ""),
        ("  column decisions", column_decisions,
         (f"{stats.streaks} streaks x "
          f"{stats.streak_commands / stats.streaks:.2f} cmds mean"
          if stats.streaks else "no streaks")),
        ("  precharges", stats.precharges, ""),
        ("  refreshes", stats.refreshes, ""),
        ("housekeeping", stats.power_down_entries,
         "power-down entries (idle-close walks)"),
        ("drain entries", stats.drain_entries, "write-drain mode switches"),
    ]
    for label, value, note in rows:
        suffix = f"  ({note})" if note else ""
        print(f"    {label:<20}{value:>12,}{suffix}")


def cmd_compare(args: argparse.Namespace) -> int:
    """Compare schemes on one workload, normalized to the baseline."""
    runner = ExperimentRunner(
        events_per_core=args.events, seed=args.seed,
        base_config=_base_config(args),
    )
    policy = _POLICIES[args.policy]
    schemes = [by_name(s) for s in args.schemes]
    if BASELINE not in schemes:
        schemes.insert(0, BASELINE)
    print(f"{args.workload} ({policy.value}, {args.events} events/core)")
    header = f"{'scheme':<14}{'power':>8}{'energy':>8}{'EDP':>8}{'perf':>8}"
    print(header)
    print("-" * len(header))
    for scheme in schemes:
        power = runner.normalized_power(args.workload, scheme, policy)
        energy = runner.normalized_energy(args.workload, scheme, policy)
        edp = runner.normalized_edp(args.workload, scheme, policy)
        perf = runner.normalized_performance(args.workload, scheme, policy)
        print(f"{scheme.name:<14}{power:>8.3f}{energy:>8.3f}{edp:>8.3f}{perf:>8.3f}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a scheme x workload x policy grid and export CSV/JSON."""
    from repro.sim.sweep import Sweep

    sweep = Sweep(events_per_core=args.events, seed=args.seed)
    sweep.add_axis("scheme", args.schemes)
    sweep.add_axis("workload", args.workloads)
    sweep.add_axis("policy", args.policies)
    if isinstance(args.batch, int) and args.batch < 1:
        raise ValueError("--batch must be a positive integer or 'auto'")
    if args.pool:
        _check_worker_budget("--pool", args.pool)
        from repro.sim.pool import SimPool

        with SimPool(workers=args.pool) as pool:
            rows = sweep.run(pool=pool, batch=args.batch)
    else:
        if args.workers is not None:
            _check_worker_budget("--workers", args.workers)
        rows = sweep.run(workers=args.workers, batch=args.batch)
    if args.out.endswith(".json"):
        sweep.to_json(args.out)
    else:
        sweep.to_csv(args.out)
    print(f"wrote {len(rows)} rows to {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Drive one figure suite's full grid through a single warm pool."""
    import time

    from repro.sim.runner import ExperimentRunner, arithmetic_mean

    pool_workers = args.pool
    if pool_workers is None:
        pool_workers = min(2, _available_cpus())
    else:
        if pool_workers:
            _check_worker_budget("--pool", pool_workers)

    scheme_names, workload_names = _BENCH_SUITES[args.suite]
    if workload_names is None:
        workload_names = list(ALL_WORKLOADS)
    schemes = [by_name(name) for name in scheme_names]
    policy = _POLICIES[args.policy]
    specs = [
        (wl_name, scheme, policy)
        for wl_name in workload_names
        for scheme in schemes
    ]

    pool = None
    if pool_workers:
        from repro.sim.pool import SimPool

        pool = SimPool(workers=pool_workers)
    try:
        runner = ExperimentRunner(
            events_per_core=args.events, seed=args.seed,
            base_config=_base_config(args), pool=pool,
        )
        start = time.perf_counter()  # reprolint: allow[determinism-wallclock]
        results = runner.run_many(specs)
        elapsed = time.perf_counter() - start  # reprolint: allow[determinism-wallclock]
    finally:
        if pool is not None:
            pool.close()

    by_point = {
        (spec[0], spec[1].name): result for spec, result in zip(specs, results)
    }
    mode = f"pool({pool_workers})" if pool_workers else "serial"
    print(f"{args.suite}: {len(specs)} points, {len(workload_names)} workloads "
          f"x {len(schemes)} schemes ({policy.value}, "
          f"{args.events} events/core, {mode})")
    print(f"  wall time    {elapsed:8.2f} s")
    print(f"  points/sec   {len(specs) / elapsed:8.2f}")
    header = f"{'scheme':<14}{'power':>8}{'energy':>8}{'EDP':>8}"
    print(header)
    print("-" * len(header))
    for scheme in schemes:
        powers, energies, edps = [], [], []
        for wl_name in workload_names:
            result = by_point[(wl_name, scheme.name)]
            base = by_point[(wl_name, "Baseline")]
            powers.append(result.avg_power_mw / base.avg_power_mw)
            energies.append(result.total_energy_mj / base.total_energy_mj)
            edps.append(result.edp / base.edp)
        print(f"{scheme.name:<14}{arithmetic_mean(powers):>8.3f}"
              f"{arithmetic_mean(energies):>8.3f}"
              f"{arithmetic_mean(edps):>8.3f}")
    return 0


def _profiled(func: Callable[..., int], *args: object) -> int:
    """Run ``func`` under cProfile; print the top 25 cumulative entries.

    Batched sweeps (``sweep --batch ... --profile``) additionally get
    the subsystem attribution table (:func:`_print_batch_attribution`):
    the flat top-25 is dominated by whichever helper happens to be
    hottest, while the table answers the question batching poses —
    how much time ran through the cross-lane kernel ops versus the
    residual scalar controller steps.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(func, *args)
    finally:
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
        ns = args[0] if args else None
        if getattr(ns, "batch", None) is not None:
            _print_batch_attribution(stats)


#: ``--profile`` attribution buckets for batched sweeps: subsystem
#: label -> module path suffixes whose *exclusive* time it collects.
_BATCH_PROFILE_BUCKETS: "tuple[tuple[str, tuple[str, ...]], ...]" = (
    ("vectorized kernel ops", ("repro/dram/soa_batch.py",)),
    ("cohort event loop", ("repro/sim/batch.py",)),
    (
        "scalar controller steps",
        ("repro/controller/memctrl.py", "repro/dram/channel.py"),
    ),
    (
        "construction + restore",
        (
            "repro/cache/set_assoc.py",
            "repro/cache/dbi.py",
            "repro/sim/system.py",
            "repro/sim/snapshot.py",
        ),
    ),
)


def _print_batch_attribution(stats: "object") -> None:
    """Print the batched-sweep profile attribution table.

    Buckets every profile entry's exclusive (tottime) samples by the
    module suffixes in :data:`_BATCH_PROFILE_BUCKETS`; entries
    matching no bucket land in ``everything else``.  Exclusive time
    sums to the whole profile, so the percentages partition 100%.
    """
    entries = getattr(stats, "stats", None)
    if not entries:
        return
    totals = {name: 0.0 for name, _ in _BATCH_PROFILE_BUCKETS}
    other = 0.0
    grand = 0.0
    for (filename, _, _), (_, _, tottime, _, _) in entries.items():
        grand += tottime
        path = filename.replace("\\", "/")
        for name, suffixes in _BATCH_PROFILE_BUCKETS:
            if path.endswith(suffixes):
                totals[name] += tottime
                break
        else:
            other += tottime
    if not grand:
        return
    print("=== batched sweep attribution (exclusive time) ===")
    for name, _ in _BATCH_PROFILE_BUCKETS:
        seconds = totals[name]
        print(f"  {name:<26}{seconds:8.3f} s  ({100 * seconds / grand:5.1f}%)")
    print(f"  {'everything else':<26}{other:8.3f} s  ({100 * other / grand:5.1f}%)")


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep service until interrupted (Ctrl-C exits cleanly)."""
    import asyncio

    from repro.service.server import run_service

    total = args.pools * args.workers_per_pool
    cpus = _available_cpus()
    if total > cpus:
        raise ValueError(
            f"--pools {args.pools} x --workers-per-pool "
            f"{args.workers_per_pool} = {total} simulation workers "
            f"exceeds the {cpus} available CPU(s); shrink one of them"
        )
    if args.pools < 1 or args.workers_per_pool < 1:
        raise ValueError("--pools and --workers-per-pool must be positive")
    print(f"sweep service: dir={args.root} pools={args.pools} "
          f"workers/pool={args.workers_per_pool}", file=sys.stderr)
    try:
        asyncio.run(
            run_service(
                args.root,
                host=args.host,
                port=args.port,
                pools=args.pools,
                workers_per_pool=args.workers_per_pool,
                max_inflight=args.max_inflight,
                port_file=args.port_file,
            )
        )
    except KeyboardInterrupt:
        print("sweep service: interrupted, shut down", file=sys.stderr)
    return 0


def _service_client(args: argparse.Namespace) -> "object":
    """Build a :class:`ServiceClient` from endpoint flags."""
    from repro.service.client import ServiceClient

    port = args.port
    if args.port_file is not None:
        with open(args.port_file) as handle:
            port = int(handle.read().strip())
    return ServiceClient(host=args.host, port=port)


def _export_rows(rows: "List[dict]", out: str) -> None:
    """Write service rows to ``.csv`` or ``.json`` (sweep-compatible)."""
    import csv
    import json as _json

    if out.endswith(".json"):
        with open(out, "w") as handle:
            _json.dump(rows, handle, indent=2)
        return
    with open(out, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a sweep spec over HTTP; optionally wait and export rows."""
    axes: dict = {"scheme": args.schemes, "workload": args.workloads}
    if args.policies is not None:
        axes["policy"] = args.policies
    if args.ecc_chips is not None:
        axes["ecc_chips"] = args.ecc_chips
    spec = {
        "events_per_core": args.events,
        "seed": args.seed,
        "warmup_events_per_core": args.warmup,
        "llc_bytes": args.llc_bytes,
        "axes": axes,
    }
    client = _service_client(args)
    status = client.submit(spec)  # type: ignore[attr-defined]
    print(f"job {status['job_id']}: {status['state']} "
          f"({status['total']} points, {status['cached']} cached, "
          f"{status['coalesced']} coalesced, {status['computed']} computing)")
    if args.no_wait:
        return 0
    status = client.wait(status["job_id"])  # type: ignore[attr-defined]
    if status["state"] != "done":
        print(f"error: job failed: {status.get('error')}", file=sys.stderr)
        return 1
    rows = client.rows(status["job_id"])  # type: ignore[attr-defined]
    if args.out:
        _export_rows(rows, args.out)
        print(f"wrote {len(rows)} rows to {args.out}")
    else:
        for row in rows:
            print(row)
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    """Fetch results from a running service (job rows or one digest)."""
    from repro.service.client import ServiceError

    if (args.job is None) == (args.digest is None):
        raise ValueError("pass exactly one of --job or --digest")
    client = _service_client(args)
    if args.digest is not None:
        try:
            row = client.result(args.digest)  # type: ignore[attr-defined]
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(row)
        return 0
    try:
        status = client.status(args.job)  # type: ignore[attr-defined]
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"job {status['job_id']}: {status['state']} "
          f"({status['completed']}/{status['total']} points)")
    if status["state"] != "done":
        return 0
    rows = client.rows(status["job_id"])  # type: ignore[attr-defined]
    if args.out:
        _export_rows(rows, args.out)
        print(f"wrote {len(rows)} rows to {args.out}")
    else:
        for row in rows:
            print(row)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint (v1 rules + v2 dataflow passes) and the typegate.

    Exit status is the worst of the two layers: 1 when any finding
    fired or the typing gate failed, 0 when both are clean.  The JSON
    report (``--format json`` to stdout, ``--json-out`` to a file) is
    a stable document CI archives per run::

        {"version": 1, "paths": [...], "findings": [...],
         "counts": {"<rule-id>": n, ...}, "typegate": 0|1|null}
    """
    import json as _json

    from repro.analysis import typegate
    from repro.analysis.lint import lint_paths
    from repro.analysis.rules import RULE_IDS, find_repo_root

    if args.select:
        unknown = set(args.select) - RULE_IDS
        if unknown:
            raise ValueError(f"unknown reprolint rule(s): {sorted(unknown)}")
    repo_root = find_repo_root(os.getcwd())
    paths = args.paths or [
        os.path.join(repo_root, "src"), os.path.join(repo_root, "tests")
    ]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        raise ValueError(
            f"no such path(s): {missing} — run from inside the repo or "
            f"pass explicit files/trees to lint"
        )
    findings = lint_paths(paths, select=args.select, repo_root=repo_root)

    def rel(path: str) -> str:
        return os.path.relpath(os.path.abspath(path), repo_root).replace(
            "\\", "/"
        )

    if args.fmt == "text":
        for finding in findings:
            print(finding.render())
    elif args.fmt == "github":
        # Workflow-command annotations: GitHub attaches these to the
        # offending file/line in the PR diff view.
        for finding in findings:
            message = finding.message.replace("\n", " ")
            print(
                f"::error file={rel(finding.path)},line={finding.line},"
                f"title=reprolint {finding.rule}::{message}"
            )

    typegate_code: Optional[int] = None
    if not args.no_typegate:
        typegate_argv = [] if args.lax_types else ["--strict"]
        typegate_code = typegate.main(typegate_argv)

    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    report = {
        "version": 1,
        "paths": [rel(p) for p in paths],
        "findings": [
            {"path": rel(f.path), "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in findings
        ],
        "counts": counts,
        "typegate": typegate_code,
    }
    if args.fmt == "json":
        print(_json.dumps(report, indent=2, sort_keys=True))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    noun = "finding" if len(findings) == 1 else "findings"
    gate = (
        "skipped" if typegate_code is None
        else "ok" if typegate_code == 0 else "FAILED"
    )
    print(
        f"repro lint: {len(findings)} {noun}, typegate {gate}",
        file=sys.stderr,
    )
    if findings or (typegate_code or 0) != 0:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    dispatch = {
        "run": cmd_run,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "bench": cmd_bench,
        "lint": cmd_lint,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "results": cmd_results,
    }
    try:
        if args.command == "list":
            return cmd_list()
        command = dispatch.get(args.command)
        if command is None:
            raise RuntimeError(f"unhandled command {args.command!r}")
        if getattr(args, "profile", False):
            return _profiled(command, args)
        return command(args)
    except (KeyError, ValueError) as exc:
        # Bad scheme/workload names and invalid sizes are user errors:
        # print them cleanly instead of a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
