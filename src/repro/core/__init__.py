"""The paper's contribution: PRA masks and activation schemes."""

from repro.core.mask import (
    PRAMask,
    activated_fraction,
    covers,
    granularity_eighths,
    is_full,
    merge,
    popcount,
    word_indices,
)
from repro.core.sds import (
    GranularityComparison,
    SDSComparator,
    StoreWidthModel,
    masks_from_distribution,
)
from repro.core.schemes import (
    ALL_SCHEMES,
    BASELINE,
    DBI,
    DBI_PRA,
    FGA,
    HALF_DRAM,
    HALF_DRAM_PRA,
    MAIN_SCHEMES,
    PRA,
    PRA_DM,
    Scheme,
    by_name,
)

__all__ = [
    "activated_fraction",
    "ALL_SCHEMES",
    "BASELINE",
    "by_name",
    "covers",
    "DBI",
    "DBI_PRA",
    "FGA",
    "granularity_eighths",
    "HALF_DRAM",
    "HALF_DRAM_PRA",
    "is_full",
    "MAIN_SCHEMES",
    "merge",
    "popcount",
    "PRA",
    "PRA_DM",
    "PRAMask",
    "Scheme",
    "word_indices",
    "GranularityComparison",
    "SDSComparator",
    "StoreWidthModel",
    "masks_from_distribution",
]
