"""Scheme configurations: Baseline, FGA, Half-DRAM, PRA and combinations.

A :class:`Scheme` tells the memory controller and the power model how
row activations behave:

* **Baseline** — conventional DDR3: full-row activation for everything.
* **FGA** (fine-grained activation, evaluated at half-row granularity
  as in the paper) — half-row activation for reads *and* writes, but
  the n-bit prefetch is broken, so a 64 B line needs twice the bus
  cycles (16 half-width bursts), which costs performance.
* **Half-DRAM** — half-row activation for reads and writes at full
  bandwidth (MATs split vertically), relaxed tRRD/tFAW.
* **PRA** (this paper) — full-row activation for reads; for writes,
  only the MAT groups holding dirty words are activated (1/8 .. 8/8
  granularity), only dirty words are driven on the bus (write I/O
  savings), and partially open rows can produce *false row buffer
  hits*.
* **Half-DRAM + PRA** — PRA's masked write activation on top of
  Half-DRAM's vertically split MATs: a write touching g word lanes
  activates g/16 of the row (Section 5.2.3).
* **DBI** / **DBI + PRA** — the Dirty-Block Index triggers DRAM-aware
  writeback of same-row dirty lines (Section 5.2.3); orthogonal to the
  activation scheme, so modelled as a flag combinable with any of the
  above.

Coverage vs. power are deliberately separate: Half-DRAM's half
activation still covers every column of the row (the split is
vertical), whereas PRA's partial activation covers only the selected
word lanes — only the latter can cause false row buffer hits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class Scheme:
    """Static description of a row-activation scheme."""

    name: str
    #: Fraction of the row's bitlines activated by a read ACT.
    read_fraction: float = 1.0
    #: Whether write activations are masked by the FGD dirty bits (PRA).
    write_uses_mask: bool = False
    #: Fraction activated by an unmasked write ACT.
    write_fraction: float = 1.0
    #: Extra scale applied to a masked write's activated fraction
    #: (0.5 when PRA rides on Half-DRAM's split MATs).
    mask_scale: float = 1.0
    #: Data-bus occupancy multiplier for a line transfer (2 for FGA).
    burst_multiplier: int = 1
    #: Whether partial/half activations relax tRRD and tFAW.
    relax_act_constraints: bool = False
    #: Whether only dirty words are driven on writes (write I/O saving).
    scale_write_io: bool = False
    #: Whether masked activations pay the +1 cycle PRA-mask transfer.
    masked_act_extra_cycle: bool = True
    #: Deliver the PRA mask over the DM pin with a data burst instead
    #: of the address bus (Section 4.2 design alternative): no +1 tRCD
    #: cycle and no second command-bus cycle, but the data bus is held
    #: for one burst before the activation, limiting rank/bank
    #: parallelism exactly as the paper warns.
    mask_via_dm_pin: bool = False
    #: Whether the Dirty-Block Index drives DRAM-aware writeback.
    dbi: bool = False

    def __post_init__(self) -> None:
        for label, value in (
            ("read_fraction", self.read_fraction),
            ("write_fraction", self.write_fraction),
            ("mask_scale", self.mask_scale),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {value}")
        if self.burst_multiplier < 1:
            raise ValueError("burst_multiplier must be >= 1")

    @property
    def is_partial_write(self) -> bool:
        """True if writes can open less of the row than reads need."""
        return self.write_uses_mask

    def with_dbi(self, enabled: bool = True) -> "Scheme":
        suffix = "+DBI" if enabled and not self.dbi else ""
        return replace(self, dbi=enabled, name=self.name + suffix)


BASELINE = Scheme(name="Baseline")

FGA = Scheme(
    name="FGA",
    read_fraction=0.5,
    write_fraction=0.5,
    burst_multiplier=2,
    relax_act_constraints=True,
)

HALF_DRAM = Scheme(
    name="Half-DRAM",
    read_fraction=0.5,
    write_fraction=0.5,
    relax_act_constraints=True,
)

PRA = Scheme(
    name="PRA",
    write_uses_mask=True,
    scale_write_io=True,
    relax_act_constraints=True,
)

HALF_DRAM_PRA = Scheme(
    name="Half-DRAM+PRA",
    read_fraction=0.5,
    write_uses_mask=True,
    mask_scale=0.5,
    scale_write_io=True,
    relax_act_constraints=True,
)

DBI = Scheme(name="DBI", dbi=True)

DBI_PRA = Scheme(
    name="DBI+PRA",
    write_uses_mask=True,
    scale_write_io=True,
    relax_act_constraints=True,
    dbi=True,
)

#: Skinflint DRAM System (the Section 3 comparison point), modelled at
#: scheme level: rows are always fully activated (no masked ACTs, no
#: false row-buffer hits, stock tRRD/tFAW), but write bursts drive
#: only the dirty words on the bus.  Doubles as the ablation isolating
#: PRA's write-I/O-termination savings from its activation savings
#: (:mod:`repro.core.sds` holds the per-chip coverage comparator).
SDS = Scheme(
    name="SDS",
    scale_write_io=True,
)

PRA_DM = Scheme(
    name="PRA-DM",
    write_uses_mask=True,
    scale_write_io=True,
    relax_act_constraints=True,
    masked_act_extra_cycle=False,
    mask_via_dm_pin=True,
)

#: The schemes compared in Figures 12 and 13.
MAIN_SCHEMES = (BASELINE, FGA, HALF_DRAM, PRA)

#: All named schemes, keyed by name.
ALL_SCHEMES = {
    s.name: s
    for s in (
        BASELINE, FGA, HALF_DRAM, PRA, HALF_DRAM_PRA, DBI, DBI_PRA, PRA_DM, SDS,
    )
}


def by_name(name: str) -> Scheme:
    """Look up a scheme by its paper name (case-insensitive)."""
    for key, scheme in ALL_SCHEMES.items():
        if key.lower() == name.lower():
            return scheme
    raise KeyError(f"unknown scheme {name!r}; known: {sorted(ALL_SCHEMES)}")
