"""PRA masks: which MAT groups of a row are (to be) activated.

An 8-bit mask accompanies every PRA activation; bit *i* selects MAT
group *i*, which stores word *i* of every cache line in the row
(Figure 6).  The memory controller derives the mask from the
fine-grained dirty bits of the evicted line and ORs together the masks
of all queued writes heading to the same row (Section 5.2.1), so one
partial activation can serve several pending writes.

Masks are plain ints for speed; this module provides the semantics
around them (granularity, coverage, merging) and a small value class
used at API boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dram.geometry import FULL_MASK, WORDS_PER_LINE


def popcount(mask: int) -> int:
    """Number of selected MAT groups in ``mask``."""
    return bin(mask & FULL_MASK).count("1")


def is_full(mask: int) -> bool:
    """True if the mask selects every MAT group (full-row activation)."""
    return (mask & FULL_MASK) == FULL_MASK


def covers(open_mask: int, needed_mask: int) -> bool:
    """True if an open row with ``open_mask`` can serve ``needed_mask``.

    A read needs ``needed_mask == FULL_MASK``; a write needs exactly its
    dirty words.  If any needed group is closed, the access is a *false
    row buffer hit* (Section 5.2.1) and requires PRE + ACT.
    """
    return (needed_mask & ~open_mask & FULL_MASK) == 0

def merge(*masks: int) -> int:
    """OR-merge several masks into one activation mask."""
    out = 0
    for mask in masks:
        out |= mask
    return out & FULL_MASK


def granularity_eighths(mask: int) -> int:
    """Activation granularity in eighths of a row (1..8)."""
    count = popcount(mask)
    if count == 0:
        raise ValueError("an activation mask must select at least one group")
    return count


def activated_fraction(mask: int) -> float:
    """Fraction of the row opened by ``mask`` (0 < f <= 1)."""
    return granularity_eighths(mask) / WORDS_PER_LINE


def word_indices(mask: int) -> "tuple[int, ...]":
    """Indices of the words/MAT groups selected by ``mask``."""
    return tuple(i for i in range(WORDS_PER_LINE) if mask >> i & 1)


@dataclass(frozen=True, slots=True)
class PRAMask:
    """Value-class wrapper over an 8-bit PRA mask.

    The simulator hot paths use bare ints; :class:`PRAMask` is the
    ergonomic form for public APIs, examples and tests.
    """

    bits: int

    def __post_init__(self) -> None:
        if not 0 < self.bits <= FULL_MASK:
            raise ValueError(f"mask bits out of range: {self.bits:#x}")

    @classmethod
    def full(cls) -> "PRAMask":
        return cls(FULL_MASK)

    @classmethod
    def from_words(cls, words: Iterable[int]) -> "PRAMask":
        bits = 0
        for word in words:
            if not 0 <= word < WORDS_PER_LINE:
                raise ValueError(f"word index out of range: {word}")
            bits |= 1 << word
        return cls(bits)

    @property
    def granularity(self) -> int:
        return granularity_eighths(self.bits)

    @property
    def fraction(self) -> float:
        return activated_fraction(self.bits)

    @property
    def is_full(self) -> bool:
        return is_full(self.bits)

    def covers(self, other: "PRAMask") -> bool:
        return covers(self.bits, other.bits)

    def __or__(self, other: "PRAMask") -> "PRAMask":
        return PRAMask(merge(self.bits, other.bits))

    def words(self) -> "tuple[int, ...]":
        return word_indices(self.bits)

    def __str__(self) -> str:
        return format(self.bits, "08b") + "b"
