"""Skinflint DRAM System (SDS) comparator (Section 3 of the paper).

SDS is the closest prior scheme: it targets *inter-chip* access
reduction for writes — chip *i* of the rank is skipped when byte
position *i* of every word in the cache line is clean.  PRA instead
masks *intra-chip* MAT groups per dirty word.  The paper's quantitative
claim: PRA reduces average row-activation granularity by ~42 % while
SDS reduces average chip-access granularity by only ~16 %, because a
single dirty word with a wide store already touches most byte
positions... whereas it maps to exactly one MAT group under PRA.

Word-level FGD masks carry no byte information, so the comparator
synthesizes per-word byte spans from a store-width distribution
(defaults reflect a typical integer/pointer store mix).  This is an
analysis utility, not a timing model: it consumes eviction masks and
reports both schemes' average access granularity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.core.mask import popcount, word_indices
from repro.dram.geometry import WORDS_PER_LINE


@dataclass(frozen=True, slots=True)
class StoreWidthModel:
    """Distribution of store widths (bytes) behind each dirty word.

    Defaults: a mix of pointer/double stores (8 B), word stores (4 B)
    and narrow byte/halfword updates.
    """

    widths: Tuple[Tuple[int, float], ...] = ((8, 0.55), (4, 0.30), (2, 0.08), (1, 0.07))

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.widths)
        if abs(total - 1.0) > 1e-9:
            raise ValueError("store-width probabilities must sum to 1")
        for width, _ in self.widths:
            if width not in (1, 2, 4, 8):
                raise ValueError(f"unsupported store width {width}")

    def sample(self, rng: random.Random) -> int:
        """Draw one store width (bytes) from the distribution."""
        roll = rng.random()
        cumulative = 0.0
        for width, prob in self.widths:
            cumulative += prob
            if roll <= cumulative:
                return width
        return self.widths[-1][0]


@dataclass(slots=True)
class GranularityComparison:
    """Average access granularity of both schemes over one mask stream."""

    lines: int
    #: Mean fraction of the row PRA activates for these writes.
    pra_mean_fraction: float
    #: Mean fraction of the rank's chips SDS must access.
    sds_mean_fraction: float

    @property
    def pra_reduction(self) -> float:
        return 1.0 - self.pra_mean_fraction

    @property
    def sds_reduction(self) -> float:
        return 1.0 - self.sds_mean_fraction


class SDSComparator:
    """Replays FGD eviction masks through both schemes' skip rules."""

    def __init__(
        self,
        store_widths: StoreWidthModel = StoreWidthModel(),
        seed: int = 0,
    ) -> None:
        self.store_widths = store_widths
        self.rng = random.Random(seed)

    def byte_columns_for_mask(self, mask: int) -> int:
        """Bitmap of byte positions (chips) holding dirty data.

        Each dirty word is assumed written by one store of sampled
        width at an aligned offset, dirtying that byte span.
        """
        columns = 0
        for _ in word_indices(mask):
            width = self.store_widths.sample(self.rng)
            slots = 8 // width
            offset = self.rng.randrange(slots) * width
            span = ((1 << width) - 1) << offset
            columns |= span
        return columns

    def compare(self, masks: Iterable[int]) -> GranularityComparison:
        """Average PRA vs SDS granularity over an eviction-mask stream."""
        lines = 0
        pra_total = 0.0
        sds_total = 0.0
        for mask in masks:
            lines += 1
            pra_total += popcount(mask) / WORDS_PER_LINE
            columns = self.byte_columns_for_mask(mask)
            sds_total += bin(columns).count("1") / 8.0
        if lines == 0:
            raise ValueError("need at least one eviction mask")
        return GranularityComparison(
            lines=lines,
            pra_mean_fraction=pra_total / lines,
            sds_mean_fraction=sds_total / lines,
        )


def masks_from_distribution(
    dirty_word_dist: Tuple[Tuple[int, float], ...],
    lines: int,
    seed: int = 0,
) -> "list[int]":
    """Sample eviction masks from a Figure-3-style distribution."""
    rng = random.Random(seed)
    masks = []
    for _ in range(lines):
        roll = rng.random()
        cumulative = 0.0
        words = dirty_word_dist[-1][0]
        for count, prob in dirty_word_dist:
            cumulative += prob
            if roll <= cumulative:
                words = count
                break
        if words >= 8:
            masks.append(0xFF)
            continue
        mask = 0
        for bit in rng.sample(range(8), words):
            mask |= 1 << bit
        masks.append(mask)
    return masks
