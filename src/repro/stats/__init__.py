"""Statistics utilities: latency histograms and ASCII reporting."""

from repro.stats.histogram import LatencyHistogram
from repro.stats.report import (
    bar,
    format_breakdown,
    format_comparison,
    format_histogram,
    format_table,
)

__all__ = [
    "bar",
    "format_breakdown",
    "format_comparison",
    "format_histogram",
    "format_table",
    "LatencyHistogram",
]
