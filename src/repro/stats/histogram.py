"""Log-bucketed histograms for latency distributions.

Memory-request latencies span orders of magnitude (a row hit costs
~15 ns; a request stuck behind a refresh and a write drain costs
microseconds), so buckets grow geometrically.  The histogram supports
percentile queries with linear interpolation inside a bucket — enough
resolution for p50/p95/p99 comparisons between schemes at negligible
memory cost.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple


class LatencyHistogram:
    """Geometric-bucket histogram over non-negative integer samples."""

    def __init__(self, base: float = 1.3, max_buckets: int = 64) -> None:
        if base <= 1.0:
            raise ValueError("bucket growth base must exceed 1")
        if max_buckets < 4:
            raise ValueError("need at least 4 buckets")
        self.base = base
        self.max_buckets = max_buckets
        self._counts: List[int] = [0] * max_buckets
        self.samples = 0
        self.total = 0
        self.min_value: int = 0
        self.max_value: int = 0
        self._log_base = math.log(base)

    def _bucket(self, value: int) -> int:
        if value <= 1:
            return 0
        idx = int(math.log(value) / self._log_base)
        return min(idx, self.max_buckets - 1)

    def _bucket_bounds(self, idx: int) -> Tuple[float, float]:
        if idx == 0:
            return (0.0, self.base)
        return (self.base ** idx, self.base ** (idx + 1))

    # ------------------------------------------------------------------
    def record(self, value: int) -> None:
        """Add one non-negative sample."""
        if value < 0:
            raise ValueError("latency samples must be non-negative")
        if self.samples == 0:
            self.min_value = self.max_value = value
        else:
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)
        self.samples += 1
        self.total += value
        self._counts[self._bucket(value)] += 1

    def record_many(self, values: Iterable[int]) -> None:
        """Add a batch of non-negative samples.

        Equivalent to calling :meth:`record` on each value, but the
        min/max/total updates are computed once per batch: the burst
        streak commit in the controller records a whole streak's
        latencies through this path.  Validation happens before any
        state is touched, so a bad batch leaves the histogram unchanged.
        """
        vals = values if isinstance(values, list) else list(values)
        if not vals:
            return
        lo = min(vals)
        if lo < 0:
            raise ValueError("latency samples must be non-negative")
        hi = max(vals)
        if self.samples == 0:
            self.min_value, self.max_value = lo, hi
        else:
            if lo < self.min_value:
                self.min_value = lo
            if hi > self.max_value:
                self.max_value = hi
        self.samples += len(vals)
        self.total += sum(vals)
        counts = self._counts
        bucket = self._bucket
        for value in vals:
            counts[bucket(value)] += 1

    def extend(self, values: Iterable[int]) -> None:
        self.record_many(values)

    def merge(self, other: "LatencyHistogram") -> None:
        """Absorb another histogram of identical shape."""
        if other.base != self.base or other.max_buckets != self.max_buckets:
            raise ValueError("histogram shapes must match to merge")
        if other.samples == 0:
            return
        if self.samples == 0:
            self.min_value, self.max_value = other.min_value, other.max_value
        else:
            self.min_value = min(self.min_value, other.min_value)
            self.max_value = max(self.max_value, other.max_value)
        self.samples += other.samples
        self.total += other.total
        for idx, count in enumerate(other._counts):
            self._counts[idx] += count

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """p in [0, 100]; interpolated within the containing bucket."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if self.samples == 0:
            return 0.0
        if p == 0:
            return float(self.min_value)
        target = self.samples * p / 100.0
        cumulative = 0
        result = float(self.max_value)
        for idx, count in enumerate(self._counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                lo, hi = self._bucket_bounds(idx)
                lo = max(lo, float(self.min_value))
                hi = min(hi, float(self.max_value) + 1.0)
                if hi <= lo:
                    result = lo
                else:
                    within = (target - cumulative) / count
                    result = lo + within * (hi - lo)
                break
            cumulative += count
        # Interpolation may poke past the observed extremes; clamp.
        return min(max(result, float(self.min_value)), float(self.max_value))

    def nonzero_buckets(self) -> "List[Tuple[float, float, int]]":
        """(low, high, count) for every populated bucket, ascending."""
        out = []
        for idx, count in enumerate(self._counts):
            if count:
                lo, hi = self._bucket_bounds(idx)
                out.append((lo, hi, count))
        return out

    def summary(self) -> Dict[str, float]:
        """Count, mean and key percentiles as a flat dict."""
        return {
            "samples": float(self.samples),
            "mean": self.mean,
            "min": float(self.min_value),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": float(self.max_value),
        }
