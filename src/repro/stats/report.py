"""ASCII report rendering: tables, bars, histograms.

Consolidates the formatting used by the CLI, the examples and the
benchmark harness into small, testable helpers.  Everything returns
strings (callers decide where to print).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.stats.histogram import LatencyHistogram


def bar(value: float, scale: float, width: int = 40, char: str = "#") -> str:
    """A proportional bar; ``scale`` is the value mapping to ``width``."""
    if scale <= 0 or width <= 0:
        raise ValueError("scale and width must be positive")
    fill = int(round(min(value / scale, 1.0) * width))
    return char * fill


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    float_digits: int = 3,
) -> str:
    """Render rows as a fixed-width table with an underlined header."""
    if not headers:
        raise ValueError("need at least one column")

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width must match headers")
        for idx, text in enumerate(row):
            widths[idx] = max(widths[idx], len(text))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(text.rjust(widths[i]) for i, text in enumerate(row)))
    return "\n".join(lines)


def format_breakdown(
    fractions: Dict[str, float],
    title: str = "power breakdown",
    width: int = 40,
) -> str:
    """Render a category->fraction dict as labelled bars."""
    lines = [f"{title}:"]
    for name, frac in fractions.items():
        lines.append(f"  {name:<10}{frac:>7.1%}  {bar(frac, 1.0, width)}")
    return "\n".join(lines)


def format_histogram(
    hist: LatencyHistogram,
    title: str = "latency (cycles)",
    width: int = 40,
) -> str:
    """Render a latency histogram with its percentile summary."""
    lines = [f"{title}: n={hist.samples} mean={hist.mean:.1f} "
             f"p50={hist.percentile(50):.0f} p95={hist.percentile(95):.0f} "
             f"p99={hist.percentile(99):.0f} max={hist.max_value}"]
    buckets = hist.nonzero_buckets()
    if buckets:
        peak = max(count for _, _, count in buckets)
        for lo, hi, count in buckets:
            lines.append(
                f"  [{lo:>8.0f},{hi:>8.0f})  {count:>7}  {bar(count, peak, width)}"
            )
    return "\n".join(lines)


def format_comparison(
    baseline: Dict[str, float],
    variant: Dict[str, float],
    labels: Tuple[str, str] = ("baseline", "variant"),
    keys: Optional[List[str]] = None,
) -> str:
    """Side-by-side metric comparison with ratios."""
    keys = keys if keys is not None else sorted(set(baseline) & set(variant))
    rows = []
    for key in keys:
        b, v = baseline[key], variant[key]
        ratio = v / b if b else float("nan")
        rows.append((key, b, v, ratio))
    return format_table(("metric", labels[0], labels[1], "ratio"), rows)
