"""Static analysis layer (``reprolint``) and the strict typing gate.

This package encodes the *repo-specific* correctness rules that keep
the simulator's fast-path/oracle duality trustworthy:

* :mod:`repro.analysis.lint` — the AST-based linter
  (``python -m repro.analysis.lint src/``).  Determinism rules,
  oracle-parity rules and hot-path hygiene rules; see
  :mod:`repro.analysis.rules` for the rule catalogue.
* :mod:`repro.analysis.registry` — which modules are registered fast
  paths (and must declare their oracle twins) and which modules are
  hot paths (and must obey the hygiene rules).
* :mod:`repro.analysis.typegate` — runs ``ruff`` + ``mypy`` with the
  configs in ``pyproject.toml`` when they are installed, and skips
  cleanly (exit 0, loud message) when they are not, so the gate never
  blocks on a missing third-party toolchain.

The third correctness layer — the opt-in runtime sanitizer — lives in
:mod:`repro.sim.sanitize` because it runs inside the simulator.

Import the submodules directly (``from repro.analysis.rules import
...``); this package intentionally re-exports nothing so that
``python -m repro.analysis.lint`` does not double-import the driver.
"""
