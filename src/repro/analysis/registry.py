"""Which modules the lint rules apply to, and how modules opt in/out.

Three scopes drive the rule engine (:mod:`repro.analysis.rules`):

* **sim code** — everything under ``src/repro`` except this analysis
  package: determinism and mutable-default rules apply here.
* **hot paths** — modules whose objects are created or touched
  per-event/per-command: hygiene rules (``slots``, no try/except in
  inner loops) apply here.  Membership is the path-based
  :data:`HOT_PATH_PARTS` set, or a ``# reprolint: hot-path`` comment
  anywhere in the file (used by fixtures and future modules).
* **fast paths** — modules registered as an optimized twin of a
  slower oracle: they must declare ``ORACLE_TWIN`` (the oracle's
  dotted module/attribute path) and ``ORACLE_TESTS`` (repo-relative
  equivalence-test files that exercise both sides).  Membership is
  :data:`FAST_PATH_MODULES`, or a module-level ``REPRO_FAST_PATH =
  True`` assignment.

Suppression: ``# reprolint: allow[rule-id]`` on the offending line,
or ``# reprolint: skip-file`` anywhere in the file.
"""

from __future__ import annotations

#: Repo-relative module paths that are *registered* fast paths.  A
#: registered module must carry ``REPRO_FAST_PATH = True`` plus the
#: ``ORACLE_TWIN`` / ``ORACLE_TESTS`` declarations — deleting the
#: marker instead of the declarations is itself a lint error, so the
#: registration cannot silently rot.
FAST_PATH_MODULES = frozenset(
    {
        "src/repro/dram/soa.py",
        "src/repro/dram/soa_batch.py",
        "src/repro/dram/rank.py",
        "src/repro/controller/memctrl.py",
        "src/repro/cache/set_assoc.py",
        "src/repro/workloads/synthetic.py",
        "src/repro/sim/snapshot.py",
        "src/repro/sim/system.py",
        "src/repro/sim/pool.py",
        "src/repro/sim/batch.py",
        "src/repro/service/jobs.py",
    }
)

#: Repo-relative paths of modules that compute content-addressed
#: digests (the sweep service's cache keys).  A digest must be a pure
#: function of the canonical spec: the ``determinism-digest-canonical``
#: rule bans builtin ``hash()`` (salted per process) and
#: ``json.dumps`` without ``sort_keys=True`` (dict insertion order) in
#: these modules, so two services — or one service across a
#: kill/restart — always agree on what has already been computed.
#: Modules may also opt in with a ``# reprolint: digest`` comment.
DIGEST_MODULE_PATHS = frozenset(
    {
        "src/repro/service/digest.py",
        "src/repro/service/store.py",
        "src/repro/service/journal.py",
    }
)

#: Repo-relative source paths of the compiled-engine modules — the
#: modules ``repro.engine.COMPILED_MODULES`` names, which the
#: ``REPRO_COMPILED=1`` build compiles with mypyc.  The
#: ``compiled-incompatible`` rule restricts these (and any module
#: carrying a ``# reprolint: compiled`` comment) to the construct
#: subset mypyc can compile, so compile-list drift fails lint instead
#: of failing the CI build.  tests/test_engine.py pins this set against
#: ``repro.engine.COMPILED_MODULES`` so the two lists cannot diverge.
COMPILED_MODULE_PATHS = frozenset(
    {
        "src/repro/cache/set_assoc.py",
        "src/repro/controller/memctrl.py",
        "src/repro/dram/rank.py",
        "src/repro/dram/soa.py",
    }
)

#: Path fragments marking hot-path modules (hygiene rules).  Matched
#: against the ``/``-normalized repo-relative path.
HOT_PATH_PARTS = (
    "src/repro/dram/",
    "src/repro/controller/",
    "src/repro/cpu/",
    "src/repro/cache/",
    "src/repro/core/",
    "src/repro/workloads/synthetic.py",
    "src/repro/stats/histogram.py",
)

#: Modules where float accumulation into energy counters is the whole
#: point (the power model) and therefore allowed.
ENERGY_ACCUMULATOR_PARTS = ("src/repro/power/",)

#: Repo-relative paths of modules that traffic in copy-on-write or
#: zero-copy aliased containers.  Each MUST declare an in-file
#: ``REPRO_COW_PROTOCOL`` (shared roots / aliasing constructors /
#: privatizers) so :mod:`repro.analysis.cowcheck` can verify that
#: every in-place mutation of a possibly-shared value is dominated by
#: a privatization or carries a ``shares[reason]`` pragma.  Modules
#: not listed here may still opt in by declaring a protocol.
COW_MODULES = frozenset(
    {
        "src/repro/cache/set_assoc.py",
        "src/repro/cache/dbi.py",
        "src/repro/dram/soa_batch.py",
        "src/repro/sim/batch.py",
    }
)

#: Path fragments in scope for the timing-constraint coverage pass
#: (:mod:`repro.analysis.constraints`): everything that can issue DRAM
#: commands.  Fixtures opt in with a ``# reprolint: timing`` comment.
TIMING_SCOPE_PARTS = (
    "src/repro/controller/",
    "src/repro/dram/soa.py",
    "src/repro/dram/soa_batch.py",
)

#: Paths never linted (the linter itself, tests' fixtures are linted
#: explicitly, never as part of a tree walk).
EXCLUDED_PARTS = (
    "src/repro/analysis/",
    "/lint_fixtures/",
    "/__pycache__/",
    ".egg-info",
)


def normalize(path: str) -> str:
    """``/``-separated path for fragment matching."""
    return path.replace("\\", "/")


def is_excluded(path: str) -> bool:
    """True if ``path`` must never be linted (see :data:`EXCLUDED_PARTS`)."""
    norm = normalize(path)
    return any(part in norm for part in EXCLUDED_PARTS)


def is_hot_path(path: str, source: str) -> bool:
    """True if hygiene rules apply: registry path match or opt-in comment."""
    norm = normalize(path)
    if any(part in norm for part in HOT_PATH_PARTS):
        return True
    return "# reprolint: hot-path" in source


def is_registered_fast_path(path: str) -> bool:
    """True if ``path`` is a registered fast-path module (oracle rules)."""
    norm = normalize(path)
    return any(norm.endswith(mod) for mod in FAST_PATH_MODULES)


def is_compiled_module(path: str, source: str) -> bool:
    """True if the mypyc-compatibility rule applies to this module."""
    norm = normalize(path)
    if any(norm.endswith(mod) for mod in COMPILED_MODULE_PATHS):
        return True
    return "# reprolint: compiled" in source


def is_digest_module(path: str, source: str) -> bool:
    """True if the digest-canonicalization rule applies to this module."""
    norm = normalize(path)
    if any(norm.endswith(mod) for mod in DIGEST_MODULE_PATHS):
        return True
    return "# reprolint: digest" in source


def allows_energy_accumulation(path: str) -> bool:
    """True if float energy accumulation is legitimate here (power model)."""
    norm = normalize(path)
    return any(part in norm for part in ENERGY_ACCUMULATOR_PARTS)


def is_cow_module(path: str) -> bool:
    """True if ``path`` must declare a ``REPRO_COW_PROTOCOL``."""
    norm = normalize(path)
    return any(norm.endswith(mod) for mod in COW_MODULES)


def is_timing_scope(path: str) -> bool:
    """True if the timing-constraint coverage pass applies to ``path``."""
    norm = normalize(path)
    return any(part in norm for part in TIMING_SCOPE_PARTS)
