"""Lightweight intraprocedural dataflow layer for the reprolint passes.

reprolint v1 rules are per-statement pattern matches; the v2 passes
(:mod:`repro.analysis.cowcheck`, :mod:`repro.analysis.constraints`)
need two whole-function facts a single AST walk cannot answer:

* **dominance** — "is every path to this mutation site guarded by a
  privatization anchor?" (the copy-on-write pass), and
* **forward may-state** — "which names *may* hold a shared value at
  this statement?" (alias propagation with branch joins).

This module provides exactly that, sized for the repo's functions: a
statement-level control-flow graph per function
(:func:`build_cfg`), classic iterative dominator computation
(:meth:`CFG.dominators`), and a generic union-join forward fixpoint
(:func:`solve_forward`) whose lattice and transfer function the client
pass supplies.  No symbolic execution, no interprocedural state — the
passes layer their own registries and one-level caller unions on top.

Graph shape conventions:

* Every compound statement (``if``/``for``/``while``/``try``/``match``)
  is a *header* living in the block where control reaches it; its
  branch bodies get their own blocks with edges from the header.  The
  header therefore **dominates** every statement of every branch and
  the join point — which is what lets the COW pass treat a guarding
  ``if`` as a privatization anchor for everything after it.
* Loop bodies edge back to their header; ``break``/``continue`` edge
  to the loop exit/header; ``return``/``raise`` edge to the function
  exit block.
* ``try`` is conservative: the handlers are reachable from the header
  directly (an exception may fire before any body statement completes)
  and from the body's end.
* Nested ``def``/``class`` statements are opaque simple statements —
  analyses run per function, never across function boundaries.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Statement types whose nested bodies are *not* part of this
#: function's control flow.
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class Block:
    """One basic block: a run of statements plus its CFG edges."""

    __slots__ = ("id", "stmts", "succs", "preds")

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.stmts: List[ast.stmt] = []
        self.succs: List[int] = []
        self.preds: List[int] = []

    def __repr__(self) -> str:
        return (
            f"Block({self.id}, stmts={len(self.stmts)}, "
            f"succs={self.succs})"
        )


class CFG:
    """Control-flow graph of one function body (statement granularity)."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        #: id(stmt) -> (block id, index inside the block).
        self._stmt_pos: Dict[int, Tuple[int, int]] = {}
        self.entry = self.new_block()
        self.exit = self.new_block()
        self._dom: Optional[Dict[int, Set[int]]] = None

    # -- construction ---------------------------------------------------
    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: Block, dst: Block) -> None:
        if dst.id not in src.succs:
            src.succs.append(dst.id)
            dst.preds.append(src.id)

    def place(self, block: Block, stmt: ast.stmt) -> None:
        """Append ``stmt`` to ``block`` and index its position."""
        self._stmt_pos[id(stmt)] = (block.id, len(block.stmts))
        block.stmts.append(stmt)

    def position(self, stmt: ast.stmt) -> Optional[Tuple[int, int]]:
        """(block id, index) of a placed statement, or None."""
        return self._stmt_pos.get(id(stmt))

    # -- dominance ------------------------------------------------------
    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen = {self.entry.id}
        work = [self.entry.id]
        while work:
            for succ in self.blocks[work.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def dominators(self) -> Dict[int, Set[int]]:
        """Block id -> set of block ids dominating it (reflexive).

        Classic iterative dataflow: ``dom(entry) = {entry}``, every
        other reachable block starts at "all blocks" and intersects its
        predecessors' sets to a fixpoint.  Unreachable blocks keep the
        full set (vacuously dominated), which makes dead-code mutation
        sites anchor-trivially — they cannot execute.
        """
        if self._dom is not None:
            return self._dom
        reach = self.reachable()
        everything = {block.id for block in self.blocks}
        dom: Dict[int, Set[int]] = {
            block.id: set(everything) for block in self.blocks
        }
        dom[self.entry.id] = {self.entry.id}
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                if block.id == self.entry.id or block.id not in reach:
                    continue
                pred_doms = [
                    dom[p] for p in block.preds if p in reach
                ]
                new = set.intersection(*pred_doms) if pred_doms else set()
                new.add(block.id)
                if new != dom[block.id]:
                    dom[block.id] = new
                    changed = True
        self._dom = dom
        return dom

    def stmt_dominates(self, anchor: ast.stmt, target: ast.stmt) -> bool:
        """True when ``anchor`` executes on *every* path to ``target``.

        Same block: the anchor must come strictly earlier.  Different
        blocks: the anchor's block must be in the target block's
        dominator set (the whole anchor block runs before the target).
        """
        pos_a = self.position(anchor)
        pos_t = self.position(target)
        if pos_a is None or pos_t is None:
            return False
        block_a, idx_a = pos_a
        block_t, idx_t = pos_t
        if block_a == block_t:
            return idx_a < idx_t
        return block_a in self.dominators()[block_t]


class _Builder:
    """Recursive CFG construction over a statement list."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: Innermost-first stack of (loop header, loop exit) blocks.
        self.loops: List[Tuple[Block, Block]] = []

    def build(self, stmts: Sequence[ast.stmt], current: Block) -> Block:
        """Wire ``stmts`` starting at ``current``; return the fall-
        through block (possibly unreachable after a terminator)."""
        cfg = self.cfg
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                cfg.place(current, stmt)
                join = cfg.new_block()
                then_entry = cfg.new_block()
                cfg.add_edge(current, then_entry)
                then_end = self.build(stmt.body, then_entry)
                cfg.add_edge(then_end, join)
                if stmt.orelse:
                    else_entry = cfg.new_block()
                    cfg.add_edge(current, else_entry)
                    else_end = self.build(stmt.orelse, else_entry)
                    cfg.add_edge(else_end, join)
                else:
                    cfg.add_edge(current, join)
                current = join
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                header = cfg.new_block()
                cfg.add_edge(current, header)
                cfg.place(header, stmt)
                exit_block = cfg.new_block()
                body_entry = cfg.new_block()
                cfg.add_edge(header, body_entry)
                self.loops.append((header, exit_block))
                body_end = self.build(stmt.body, body_entry)
                self.loops.pop()
                cfg.add_edge(body_end, header)
                if stmt.orelse:
                    else_entry = cfg.new_block()
                    cfg.add_edge(header, else_entry)
                    else_end = self.build(stmt.orelse, else_entry)
                    cfg.add_edge(else_end, exit_block)
                else:
                    cfg.add_edge(header, exit_block)
                current = exit_block
            elif isinstance(stmt, ast.Try):
                cfg.place(current, stmt)
                join = cfg.new_block()
                body_entry = cfg.new_block()
                cfg.add_edge(current, body_entry)
                body_end = self.build(stmt.body, body_entry)
                if stmt.orelse:
                    else_entry = cfg.new_block()
                    cfg.add_edge(body_end, else_entry)
                    body_end = self.build(stmt.orelse, else_entry)
                cfg.add_edge(body_end, join)
                for handler in stmt.handlers:
                    handler_entry = cfg.new_block()
                    # An exception may fire before any body statement
                    # completes — and after the last one.
                    cfg.add_edge(current, handler_entry)
                    cfg.add_edge(body_end, handler_entry)
                    handler_end = self.build(handler.body, handler_entry)
                    cfg.add_edge(handler_end, join)
                if stmt.finalbody:
                    final_entry = cfg.new_block()
                    cfg.add_edge(join, final_entry)
                    join = self.build(stmt.finalbody, final_entry)
                current = join
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                cfg.place(current, stmt)
                current = self.build(stmt.body, current)
            elif isinstance(stmt, ast.Match):
                cfg.place(current, stmt)
                join = cfg.new_block()
                for case in stmt.cases:
                    case_entry = cfg.new_block()
                    cfg.add_edge(current, case_entry)
                    case_end = self.build(case.body, case_entry)
                    cfg.add_edge(case_end, join)
                cfg.add_edge(current, join)  # no case may match
                current = join
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                cfg.place(current, stmt)
                cfg.add_edge(current, cfg.exit)
                current = cfg.new_block()
            elif isinstance(stmt, ast.Break):
                cfg.place(current, stmt)
                if self.loops:
                    cfg.add_edge(current, self.loops[-1][1])
                current = cfg.new_block()
            elif isinstance(stmt, ast.Continue):
                cfg.place(current, stmt)
                if self.loops:
                    cfg.add_edge(current, self.loops[-1][0])
                current = cfg.new_block()
            else:
                # Simple statements — and opaque nested defs/classes.
                cfg.place(current, stmt)
        return current


def build_cfg(stmts: Sequence[ast.stmt]) -> CFG:
    """CFG of a statement list (typically a function body)."""
    cfg = CFG()
    end = _Builder(cfg).build(stmts, cfg.entry)
    cfg.add_edge(end, cfg.exit)
    return cfg


# ----------------------------------------------------------------------
# Generic forward may-analysis.
# ----------------------------------------------------------------------

#: A dataflow state: name -> client-defined lattice value (ints ordered
#: by ``max`` in the shipped passes, but any comparable value works
#: with a custom join).
State = Dict[str, int]

Transfer = Callable[[ast.stmt, State], State]


def join_max(states: Sequence[State]) -> State:
    """Union-join: per-name maximum across predecessor states."""
    out: State = {}
    for state in states:
        for name, value in state.items():
            if value > out.get(name, 0):
                out[name] = value
    return out


def solve_forward(
    cfg: CFG,
    transfer: Transfer,
    initial: Optional[State] = None,
    join: Callable[[Sequence[State]], State] = join_max,
) -> Dict[int, State]:
    """Forward fixpoint; returns the state *before* each statement.

    ``transfer(stmt, state)`` must return the post-state of one
    statement without mutating its input.  The join is union-style
    (may-analysis): a name shared on *any* incoming path stays shared.
    Result keys are ``id(stmt)`` for every placed statement.
    """
    entry_state: State = dict(initial) if initial else {}
    block_in: Dict[int, State] = {cfg.entry.id: entry_state}
    reach = cfg.reachable()
    # Worklist over reachable blocks until the in-states stabilize.
    work = [cfg.entry.id]
    block_out: Dict[int, State] = {}
    while work:
        block_id = work.pop(0)
        block = cfg.blocks[block_id]
        state = dict(block_in.get(block_id, {}))
        for stmt in block.stmts:
            state = transfer(stmt, state)
        if block_out.get(block_id) == state:
            continue
        block_out[block_id] = state
        for succ in block.succs:
            if succ not in reach:
                continue
            preds = [
                block_out[p]
                for p in cfg.blocks[succ].preds
                if p in block_out
            ]
            if succ == cfg.entry.id:
                preds.append(entry_state)
            merged = join(preds) if preds else {}
            if merged != block_in.get(succ):
                block_in[succ] = merged
                if succ not in work:
                    work.append(succ)
    # Recording pass: per-statement pre-states from the fixpoint.
    before: Dict[int, State] = {}
    for block in cfg.blocks:
        state = dict(block_in.get(block.id, {}))
        for stmt in block.stmts:
            before[id(stmt)] = dict(state)
            state = transfer(stmt, state)
    return before


# ----------------------------------------------------------------------
# Function discovery.
# ----------------------------------------------------------------------

def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``(qualname, node)`` for every function in a module.

    Methods are qualified ``Class.method``; nested functions
    ``outer.<locals>.inner``.  Async functions are included (the repo
    has none on analyzed paths, but fixtures may)."""
    def walk(
        body: Sequence[ast.stmt], prefix: str
    ) -> Iterator[Tuple[str, ast.FunctionDef]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield qual, node  # type: ignore[misc]
                yield from walk(node.body, f"{qual}.<locals>.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                # Conditionally-defined functions still get analyzed.
                for field in ("body", "orelse", "finalbody"):
                    yield from walk(getattr(node, field, []) or [], prefix)
                for handler in getattr(node, "handlers", []):
                    yield from walk(handler.body, prefix)
    yield from walk(tree.body, "")
