"""Timing-constraint coverage: every issue site must consult its gates.

The JEDEC protocol the controller implements is a set of *obligations*:
an ACT may not issue before tRC/tRRD/tFAW allow it, a column command
needs tRCD plus the CCD/turnaround chain and a free data bus, a PRE
needs tRAS/tWR/tRTP to have elapsed, and everything defers to the
rank-wide gate while refresh or power-down holds the rank.  The
simulator encodes those obligations as readiness state on
``TimingCore`` (``act_ready``, ``next_act_ok``, ``col_ready``, …) that
the hot path checks before committing a command.

Nothing used to force a *new* issue site to perform those checks: a
scheme hooking the timing machinery (the PRA-relaxed tRRD/tFAW path,
or a ROADMAP item 3 successor like sectored activation) could commit
an ACT without ever reading ``next_act_ok`` and no test would fail
until a workload happened to collide two activates.  This pass closes
that hole declaratively:

* :data:`CONSTRAINT_TABLE` maps each command class to the JEDEC
  parameters it must respect and the timing-state names whose
  consultation discharges each parameter.
* Issue sites are recognized *syntactically* (committing an open row,
  advancing the CCD chain, calling ``do_refresh`` /
  ``enter_power_down`` / ``exit_power_down``) in the modules named by
  ``registry.TIMING_SCOPE``.
* A site is covered when the function it lives in — or, because
  helpers like ``ChannelController._try_column`` commit
  unconditionally for callers that already screened, any transitive
  same-module *caller* of that function — reads every mandated state
  name (substring match, so the hot path's unpacked ``next_act_ok_a``
  locals count).

Administrative writes (slice-clears in ``reset``-style functions,
constructors, snapshot restores) are exempt by function-name pattern;
anything else that issues without consulting is a
``timing-unchecked-issue`` finding naming the missed parameters.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow import iter_functions


class Constraint:
    """One command class: JEDEC obligations -> consultable state names."""

    __slots__ = ("command", "checks")

    def __init__(
        self, command: str, checks: Tuple[Tuple[str, Tuple[str, ...]], ...]
    ) -> None:
        self.command = command
        #: ((jedec-params label, state names — reading ANY discharges), ...)
        self.checks = checks


#: The declarative table.  Each entry reads: "before committing
#: <command>, the issuing code must have consulted state matching one
#: name from every group".  Groups are alternatives because the hot
#: path reads unpacked aliases (``next_act_ok_a``) and helpers read
#: the attribute form (``core.next_act_ok``) — substring matching on
#: either name covers both spellings.
CONSTRAINT_TABLE: Tuple[Constraint, ...] = (
    Constraint("ACT", (
        ("tRC/tRP (bank cycle: act_ready)", ("act_ready",)),
        ("tRRD (rank act-to-act: next_act_ok)", ("next_act_ok",)),
        ("tFAW (four-activate window: faw)", ("faw",)),
        ("tRFC/PD (rank gate)", ("gate",)),
    )),
    Constraint("COLUMN", (
        ("tRCD (act-to-column: col_ready)", ("col_ready",)),
        ("tCCD (column-to-column: next_col_ok)", ("next_col_ok",)),
        ("tWTR/tRTW (bus turnaround: next_read_ok/next_write_ok)",
         ("next_read_ok", "next_write_ok")),
        ("tRFC/PD (rank gate)", ("gate",)),
        ("data-bus occupancy", ("data_bus",)),
    )),
    Constraint("PRE", (
        ("tRAS/tWR/tRTP (precharge readiness: pre_ready)", ("pre_ready",)),
    )),
    Constraint("REF", (
        ("tREFI (refresh due: next_refresh)", ("next_refresh",)),
        ("tRFC/PD (rank gate)", ("gate",)),
    )),
    Constraint("PD", (
        ("power-down state machine (pd)", ("pd",)),
    )),
)

_BY_COMMAND: Dict[str, Constraint] = {c.command: c for c in CONSTRAINT_TABLE}

#: Functions whose writes are administrative, not command issue.
_ADMIN_FN_RE = re.compile(
    r"(^__init__$|^_?reset|^_?restore|^_?clear|^_?export|^_?snapshot"
    r"|^_?decay|^_?apply_snapshot|^lane$|^_build)"
)

#: Marker that opts a non-scope file (a fixture) into this pass.
_OPT_IN_RE = re.compile(r"#\s*reprolint:\s*timing\b")


class IssueSite:
    """One syntactic command-issue site inside a function."""

    __slots__ = ("command", "line", "detail")

    def __init__(self, command: str, line: int, detail: str) -> None:
        self.command = command
        self.line = line
        self.detail = detail


def _subscript_identifier(node: ast.expr) -> str:
    """The row/attribute identifier a subscript store targets."""
    base = node
    while isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Name):
        return base.id
    return ""


def _is_minus_one(node: Optional[ast.expr]) -> bool:
    if isinstance(node, ast.Constant):
        return node.value == -1
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and node.operand.value == 1
    )


def _has_slice(node: ast.expr) -> bool:
    return isinstance(node, ast.Subscript) and isinstance(
        node.slice, ast.Slice
    )


def issue_sites(fn: ast.AST) -> List[IssueSite]:
    """All command-issue sites syntactically inside one function."""
    sites: List[IssueSite] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Subscript):
                    continue
                if _has_slice(target):
                    continue  # slice stores are administrative resets
                ident = _subscript_identifier(target)
                if "open_row" in ident:
                    if _is_minus_one(node.value):
                        sites.append(IssueSite(
                            "PRE", node.lineno,
                            "closes an open row (open_row <- -1)",
                        ))
                    else:
                        sites.append(IssueSite(
                            "ACT", node.lineno,
                            "commits an open row (open_row <- row)",
                        ))
                elif "next_col_ok" in ident:
                    sites.append(IssueSite(
                        "COLUMN", node.lineno,
                        "advances the CCD chain (next_col_ok <- t)",
                    ))
        elif isinstance(node, ast.Call):
            callee = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name) else ""
            )
            if callee == "do_refresh":
                sites.append(IssueSite(
                    "REF", node.lineno, "issues a refresh (do_refresh)",
                ))
            elif callee in ("enter_power_down", "exit_power_down"):
                sites.append(IssueSite(
                    "PD", node.lineno, f"switches power state ({callee})",
                ))
    return sites


def consulted_names(fn: ast.AST) -> Set[str]:
    """Every identifier the function reads (Load context), for
    substring matching against mandated state names.  Attribute reads
    contribute their attribute name; plain names their id — so both
    ``core.next_act_ok`` and the hot path's unpacked ``next_act_ok_a``
    register as consulting ``next_act_ok``."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            names.add(node.attr)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            names.add(node.id)
    return names


def _called_functions(fn: ast.AST) -> Set[str]:
    """Bare/attribute callee names invoked inside ``fn``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                out.add(node.func.attr)
            elif isinstance(node.func, ast.Name):
                out.add(node.func.id)
    return out


def _covers(consulted: Iterable[str], group: Tuple[str, ...]) -> bool:
    pool = list(consulted)
    return any(
        any(state in name for name in pool) for state in group
    )


def check_module(tree: ast.Module, path: str) -> List[Tuple[int, str]]:
    """``timing-unchecked-issue`` findings for one in-scope module.

    Coverage is the union of the issuing function's own reads and the
    reads of every transitive same-module caller: helpers that commit
    unconditionally (``_try_column``) inherit the screening their
    callers performed (``step`` checks ``col_ready``/``next_col_ok``/
    the bus before dispatching).  A helper reachable from *no* caller
    stands on its own reads.
    """
    functions: List[Tuple[str, ast.AST]] = list(iter_functions(tree))
    simple_names = {qual.rsplit(".", 1)[-1]: qual for qual, _ in functions}
    reads: Dict[str, Set[str]] = {}
    calls: Dict[str, Set[str]] = {}
    for qual, fn in functions:
        reads[qual] = consulted_names(fn)
        # Map callee simple names back to in-module qualnames.
        calls[qual] = {
            simple_names[callee]
            for callee in _called_functions(fn)
            if callee in simple_names
        }

    # Transitive same-module callers of each function.
    callers: Dict[str, Set[str]] = {qual: set() for qual, _ in functions}
    for qual, callees in calls.items():
        for callee in callees:
            if callee != qual:
                callers[callee].add(qual)
    closed: Dict[str, Set[str]] = {}
    for qual in callers:
        seen: Set[str] = set()
        work = list(callers[qual])
        while work:
            caller = work.pop()
            if caller in seen:
                continue
            seen.add(caller)
            work.extend(callers.get(caller, ()))
        closed[qual] = seen

    findings: List[Tuple[int, str]] = []
    for qual, fn in functions:
        simple = qual.rsplit(".", 1)[-1]
        if _ADMIN_FN_RE.search(simple):
            continue
        sites = issue_sites(fn)
        if not sites:
            continue
        coverage: Set[str] = set(reads[qual])
        for caller in closed[qual]:
            coverage |= reads[caller]
        for site in sites:
            constraint = _BY_COMMAND[site.command]
            missed = [
                label
                for label, group in constraint.checks
                if not _covers(coverage, group)
            ]
            if missed:
                findings.append((
                    site.line,
                    f"{qual} {site.detail} without consulting "
                    f"{'; '.join(missed)} — {site.command} issue sites "
                    f"must read the mandated timing state (or a caller "
                    f"in this module must) before committing",
                ))
    return findings


def applies_to(path: str, source: str) -> bool:
    """Is this file in the timing-coverage scope?

    Registry scope (controller/ plus the two timing-core modules) or
    an explicit ``# reprolint: timing`` opt-in marker (fixtures).
    """
    from repro.analysis.registry import is_timing_scope

    return is_timing_scope(path) or bool(_OPT_IN_RE.search(source))
