"""Strict typing gate: run mypy + ruff when available, skip loudly when not.

The reproduction's correctness story has three layers (see DESIGN.md
§Correctness tooling): reprolint (:mod:`repro.analysis.lint`) checks
simulator-specific invariants, this gate checks general typing/style
with off-the-shelf tools, and the runtime sanitizer
(:mod:`repro.sim.sanitize`) checks live runs.

mypy and ruff are *optional* dependencies (``pip install -e .[lint]``);
the simulator itself is dependency-free and must stay runnable in bare
containers.  This wrapper therefore degrades gracefully: each tool runs
if importable and is skipped with a loud notice otherwise.  A skip is
**not** a failure (exit 0) — CI installs the lint extras, so the gate
has teeth exactly where it matters, without making local development or
hermetic environments depend on third-party packages.

Usage::

    python -m repro.analysis.typegate           # run whatever is available
    python -m repro.analysis.typegate --strict  # missing tools fail (CI)
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from typing import List, Optional, Sequence

#: (tool name, command line) — both read their config from pyproject.toml.
GATES = (
    ("ruff", ("ruff", "check", "src", "tests")),
    ("mypy", ("mypy",)),
)


def tool_available(name: str) -> bool:
    """True when the tool's Python package is importable."""
    return importlib.util.find_spec(name) is not None


def run_gate(name: str, command: Sequence[str]) -> Optional[int]:
    """Run one tool; return its exit code, or None when unavailable."""
    if not tool_available(name):
        return None
    completed = subprocess.run([sys.executable, "-m", *command])
    return completed.returncode


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the overall gate exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.typegate",
        description="Run the strict mypy+ruff gate, skipping missing tools.",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat a missing tool as a failure (CI mode)",
    )
    args = parser.parse_args(argv)

    worst = 0
    for name, command in GATES:
        code = run_gate(name, command)
        if code is None:
            print(
                f"typegate: SKIP {name} — not installed in this "
                f"environment (pip install -e .[lint] to enable)",
                file=sys.stderr,
            )
            if args.strict:
                worst = max(worst, 1)
            continue
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"typegate: {name} {status}", file=sys.stderr)
        worst = max(worst, code)
    return worst


if __name__ == "__main__":
    sys.exit(main())
