"""reprolint driver: walk trees, apply the rule engine, report.

Usage::

    python -m repro.analysis.lint src/            # lint the simulator
    python -m repro.analysis.lint --list-rules
    python -m repro.analysis.lint path.py --select hygiene-slots

Exit status 0 when no findings, 1 when any rule fired, 2 on usage
errors.  Output is one ``path:line: [rule-id] message`` per finding —
stable order, so CI diffs are readable.

The tree walk skips the analysis package itself, committed lint
fixtures (which *should* fail) and build debris; linting a file
explicitly (a direct path argument) bypasses the exclusion list so
fixtures can be exercised one by one.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, List, Optional, Sequence

from repro.analysis import registry
from repro.analysis.rules import ALL_RULES, RULE_IDS, Finding, check_file, find_repo_root


def iter_python_files(root: str) -> Iterable[str]:
    """Yield lintable ``.py`` files under ``root`` in sorted order."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [
            d for d in dirnames
            if not registry.is_excluded(os.path.join(dirpath, d) + "/")
        ]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            if not registry.is_excluded(path):
                yield path


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    repo_root: Optional[str] = None,
) -> List[Finding]:
    """Lint files/trees; returns all findings in stable order.

    Per-file rules run through :func:`check_file`; the repo-wide
    twin-fingerprint check (:mod:`repro.analysis.twins`) runs once
    over the union of linted files, reporting only pairs that have a
    side among them — so linting a lone fixture does not drag in the
    whole twin registry, while ``lint src/`` checks every pair.
    """
    findings: List[Finding] = []
    root: Optional[str] = repo_root
    linted: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            root = root or find_repo_root(path)
            for file_path in iter_python_files(path):
                findings.extend(check_file(file_path, root, select))
                linted.append(file_path)
        else:
            root = root or find_repo_root(path)
            findings.extend(check_file(path, root, select))
            linted.append(path)
    if linted and root and (select is None or "twin-drift" in select):
        from repro.analysis import twins

        rel = {
            registry.normalize(os.path.relpath(os.path.abspath(p), root))
            for p in linted
        }
        for fpath, line, message in twins.check_fingerprints(root, rel):
            findings.append(Finding(fpath, line, "twin-drift", message))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0/1/2)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Simulator-invariant static analysis for this repo "
        "(determinism, oracle parity, hot-path hygiene).",
    )
    parser.add_argument("paths", nargs="*", help="files or trees to lint")
    parser.add_argument(
        "--select", nargs="+", metavar="RULE",
        help="only report these rule ids",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:32s} [{rule.family}] {rule.summary}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2
    if args.select:
        unknown = set(args.select) - RULE_IDS
        if unknown:
            print(f"reprolint: unknown rule(s): {sorted(unknown)}", file=sys.stderr)
            return 2

    findings = lint_paths(args.paths, select=args.select)
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"reprolint: {len(findings)} {noun}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
