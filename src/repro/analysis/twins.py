"""Twin-drift detection: structural fingerprints of oracle-twin pairs.

The repo keeps three engines bit-identical through hand-maintained
transcriptions: ``_Lane.advance`` mirrors the scalar six-phase loop,
``_screened_wake`` mirrors ``issue_screen``, the lane-major slab
mirrors ``TimingCore``'s slot set, and the mypyc build compiles the
exact public API of the ``COMPILED_MODULES`` sources.  Runtime
identity tests only catch drift on inputs they happen to exercise;
this pass catches it at lint time, structurally.

Every declared pair side is **normalized** (docstrings stripped,
locations discarded) and hashed into a committed fingerprint file,
``tests/data/twin_fingerprints.json``.  ``repro lint`` recomputes the
digests on every run: a side whose digest no longer matches the
committed one fails with a per-unit diff and a note on whether its
twin moved too.  Editing twin code therefore *requires* regenerating
the fingerprints::

    REPRO_REGEN_TWINS=1 python -m repro.analysis.twins --write \
        --note "why the pair moved"

and CI additionally rejects a regeneration whose diff touches only
one side of a two-sided pair (``scripts/check_twin_regen.py``) — so
the scalar loop cannot change without ``_Lane.advance`` (or an
explicit, reviewed fingerprint bump) moving with it.

Two pair flavors:

* **two-sided** — both sides are live source (loop/screen/slots
  pairs).  The ``timing-slots`` pair additionally gets *semantic*
  cross-checks (slab slots must be a superset of the scalar slots and
  ``lane()`` must rebind every scalar state slot), which fire even
  when the fingerprints are up to date.
* **single-sided pins** — the public API of each compiled-engine
  module plus the ``COMPILED_MODULES`` tuple itself.  The "twin" is
  the mypyc build; pinning the interpreted surface means API drift is
  a conscious, regenerated act rather than a silent .so mismatch.

Fixtures (and future modules) can also declare *in-file* pairs::

    REPRO_TWIN_PAIRS = (("pair-id", "fast_fn", "slow_fn"),)

whose two functions must be structurally identical up to their names
and docstrings — the self-contained form of the drift contract.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Repo-relative fingerprint store (committed; CI-guarded).
FINGERPRINT_FILE = "tests/data/twin_fingerprints.json"

#: Fingerprint format marker; bump when normalization changes.
FORMAT = "twin-fp-v1"

#: Environment flag required for ``--write`` regeneration.
REGEN_ENV = "REPRO_REGEN_TWINS"


class Side:
    """One side of a twin pair: a file plus an object selector."""

    __slots__ = ("path", "qualname", "kind")

    def __init__(self, path: str, qualname: str, kind: str) -> None:
        self.path = path          # repo-relative, "/"-separated
        self.qualname = qualname  # "" for whole-module selectors
        self.kind = kind          # "function" | "slots" | "api" | "constant"

    def label(self) -> str:
        return f"{self.path}::{self.qualname}" if self.qualname else self.path


class Pair:
    """A declared twin pair (side ``b`` is None for single-sided pins)."""

    __slots__ = ("id", "a", "b", "note")

    def __init__(
        self, pair_id: str, a: Side, b: Optional[Side], note: str
    ) -> None:
        self.id = pair_id
        self.a = a
        self.b = b
        self.note = note

    def sides(self) -> List[Tuple[str, Side]]:
        """The pair's present sides as ``(key, Side)`` tuples."""
        out = [("a", self.a)]
        if self.b is not None:
            out.append(("b", self.b))
        return out


#: The declared oracle-twin pairs this pass guards.  Paths are
#: repo-relative; adding a transcription twin to the codebase means
#: adding it here and regenerating the fingerprints.
PAIRS: Tuple[Pair, ...] = (
    Pair(
        "scalar-loop",
        Side("src/repro/sim/system.py", "System.run", "function"),
        Side("src/repro/sim/batch.py", "_Lane.advance", "function"),
        "the batch lane advance transcribes the scalar six-phase loop",
    ),
    Pair(
        "issue-screen",
        Side(
            "src/repro/controller/memctrl.py",
            "ChannelController.issue_screen",
            "function",
        ),
        Side("src/repro/sim/batch.py", "_screened_wake", "function"),
        "the cohort screen re-implements the controller pre-issue screen "
        "on column-fed ingredients",
    ),
    Pair(
        "timing-slots",
        Side("src/repro/dram/soa.py", "TimingCore.__slots__", "slots"),
        Side(
            "src/repro/dram/soa_batch.py", "BatchTimingCore.__slots__",
            "slots",
        ),
        "the lane-major slab carries every scalar timing slot as a "
        "lane-indexed matrix",
    ),
    Pair(
        "compiled-modules",
        Side("src/repro/engine.py", "COMPILED_MODULES", "constant"),
        None,
        "the compile list itself; drift means the mypyc build compiles a "
        "different engine",
    ),
    Pair(
        "compiled-api-set_assoc",
        Side("src/repro/cache/set_assoc.py", "", "api"),
        None,
        "public API surface the mypyc extension must reproduce",
    ),
    Pair(
        "compiled-api-memctrl",
        Side("src/repro/controller/memctrl.py", "", "api"),
        None,
        "public API surface the mypyc extension must reproduce",
    ),
    Pair(
        "compiled-api-rank",
        Side("src/repro/dram/rank.py", "", "api"),
        None,
        "public API surface the mypyc extension must reproduce",
    ),
    Pair(
        "compiled-api-soa",
        Side("src/repro/dram/soa.py", "", "api"),
        None,
        "public API surface the mypyc extension must reproduce",
    ),
)

#: Scalar TimingCore slots that are constructor *parameters*, not
#: aliased lane state — ``lane()`` is not expected to rebind these.
_SLOT_PARAMS = frozenset({"num_ranks", "num_banks"})

#: Extra slab-only slots the semantic slot check tolerates.
_SLAB_ONLY_SLOTS = frozenset({"num_lanes", "backend"})


# ----------------------------------------------------------------------
# Normalization and digests.
# ----------------------------------------------------------------------

def _strip_docstrings(node: ast.AST) -> ast.AST:
    """Remove docstring expressions everywhere under ``node``."""
    for child in ast.walk(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module),
        ) and child.body:
            first = child.body[0]
            if (
                isinstance(first, ast.Expr)
                and isinstance(first.value, ast.Constant)
                and isinstance(first.value.value, str)
            ):
                child.body = child.body[1:] or [ast.Pass()]
    return node


def _digest(node: ast.AST) -> str:
    """Location-free structural hash of a (docstring-stripped) node."""
    dump = ast.dump(node, annotate_fields=True, include_attributes=False)
    return hashlib.sha256(dump.encode()).hexdigest()[:16]


def _summary(node: ast.AST, width: int = 72) -> str:
    """First line of the unparsed node, truncated for diff display."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        text = type(node).__name__
    line = text.splitlines()[0].strip()
    return line if len(line) <= width else line[: width - 3] + "..."


def _signature_node(node: ast.AST) -> ast.AST:
    """A function/class reduced to its call-surface (no body)."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        clone = ast.FunctionDef(
            name=node.name,
            args=node.args,
            body=[ast.Pass()],
            decorator_list=[],
            returns=node.returns,
            type_comment=None,
        )
        return ast.fix_missing_locations(clone)
    return node


class _Resolved:
    """A located pair side: digest, display units, anchor line."""

    __slots__ = ("digest", "units", "line")

    def __init__(
        self, digest: str, units: List[Tuple[str, str]], line: int
    ) -> None:
        self.digest = digest
        self.units = units
        self.line = line


def _find_qualname(tree: ast.Module, qualname: str) -> Optional[ast.AST]:
    """Resolve ``Class.attr`` / ``Class.method`` / ``name`` in a module."""
    parts = qualname.split(".")
    body: Sequence[ast.stmt] = tree.body
    node: Optional[ast.AST] = None
    for i, part in enumerate(parts):
        node = None
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and stmt.name == part:
                node = stmt
                break
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == part
                for t in stmt.targets
            ):
                node = stmt
                break
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == part
            ):
                node = stmt
                break
        if node is None:
            return None
        if i + 1 < len(parts):
            if not isinstance(node, ast.ClassDef):
                return None
            body = node.body
    return node


def resolve_side(side: Side, repo_root: str) -> Optional[_Resolved]:
    """Compute a side's digest and display units from the live source."""
    path = os.path.join(repo_root, *side.path.split("/"))
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError):
        return None

    if side.kind == "api":
        return _resolve_api(tree)

    node = _find_qualname(tree, side.qualname)
    if node is None:
        return None
    line = getattr(node, "lineno", 1)

    if side.kind == "function":
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        clean = _strip_docstrings(
            ast.parse(ast.unparse(node)).body[0]  # detached copy
        )
        assert isinstance(clean, (ast.FunctionDef, ast.AsyncFunctionDef))
        units = [(_summary(stmt), _digest(stmt)) for stmt in clean.body]
        return _Resolved(_digest(clean), units, line)

    if side.kind == "slots":
        values = _slot_names(node)
        if values is None:
            return None
        units = [(name, _digest(ast.Constant(value=name))) for name in values]
        joined = hashlib.sha256("\x00".join(values).encode()).hexdigest()[:16]
        return _Resolved(joined, units, line)

    if side.kind == "constant":
        assert isinstance(node, (ast.Assign, ast.AnnAssign))
        value = node.value
        if value is None:
            return None
        units = []
        if isinstance(value, (ast.Tuple, ast.List)):
            units = [(_summary(elt), _digest(elt)) for elt in value.elts]
        return _Resolved(_digest(value), units, line)

    return None


def _slot_names(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a ``__slots__`` assignment, in order."""
    value = node.value if isinstance(node, (ast.Assign, ast.AnnAssign)) else None
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    names: List[str] = []
    for elt in value.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        names.append(elt.value)
    return names


def _resolve_api(tree: ast.Module) -> _Resolved:
    """Digest of a module's public call surface (signatures only)."""
    units: List[Tuple[str, str]] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name.startswith("_"):
                continue
            sig = _signature_node(stmt)
            units.append((_summary(sig), _digest(sig)))
        elif isinstance(stmt, ast.ClassDef):
            if stmt.name.startswith("_"):
                continue
            for item in stmt.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and (
                    not item.name.startswith("_") or item.name == "__init__"
                ):
                    sig = _signature_node(item)
                    units.append(
                        (f"{stmt.name}.{_summary(sig)}", _digest(sig))
                    )
    units.sort()
    joined = hashlib.sha256(
        "\x00".join(d for _, d in units).encode()
    ).hexdigest()[:16]
    return _Resolved(joined, units, 1)


# ----------------------------------------------------------------------
# Fingerprint store.
# ----------------------------------------------------------------------

def fingerprint_path(repo_root: str) -> str:
    """Absolute path of the committed fingerprint file."""
    return os.path.join(repo_root, *FINGERPRINT_FILE.split("/"))


def load_fingerprints(repo_root: str) -> Optional[dict]:
    """The committed fingerprint document, or None if absent/invalid."""
    try:
        with open(fingerprint_path(repo_root), "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        return None
    return data


def compute_fingerprints(repo_root: str, note: str = "") -> dict:
    """The full fingerprint document for the current tree."""
    pairs: Dict[str, dict] = {}
    for pair in PAIRS:
        entry: Dict[str, object] = {"note": pair.note}
        for key, side in pair.sides():
            resolved = resolve_side(side, repo_root)
            entry[key] = (
                None
                if resolved is None
                else {
                    "path": side.path,
                    "qualname": side.qualname,
                    "kind": side.kind,
                    "digest": resolved.digest,
                    "units": [list(unit) for unit in resolved.units],
                }
            )
        pairs[pair.id] = entry
    return {"format": FORMAT, "note": note, "pairs": pairs}


def write_fingerprints(repo_root: str, note: str) -> str:
    """Regenerate the fingerprint file from the live tree."""
    document = compute_fingerprints(repo_root, note)
    path = fingerprint_path(repo_root)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Checking.
# ----------------------------------------------------------------------

def _unit_diff(
    stored: List[List[str]], current: List[Tuple[str, str]]
) -> List[str]:
    """Human-readable unit delta between stored and live fingerprints."""
    stored_set = {tuple(unit) for unit in stored}
    current_set = set(current)
    lines: List[str] = []
    for summary, digest in current:
        if (summary, digest) not in stored_set:
            lines.append(f"+ {summary}")
    for unit in stored:
        if tuple(unit) not in current_set:
            lines.append(f"- {unit[0]}")
    return lines[:8]


def check_fingerprints(
    repo_root: str, linted_paths: Optional[Set[str]] = None
) -> List[Tuple[str, int, str]]:
    """Drift findings as ``(repo-relative path, line, message)`` tuples.

    ``linted_paths`` (normalized repo-relative) restricts reporting to
    pairs with a side among the linted files; ``None`` checks all.
    """
    findings: List[Tuple[str, int, str]] = []

    def in_scope(pair: Pair) -> bool:
        if linted_paths is None:
            return True
        return any(side.path in linted_paths for _, side in pair.sides())

    stored = load_fingerprints(repo_root)
    if stored is None:
        for pair in PAIRS:
            if in_scope(pair):
                findings.append((
                    pair.a.path, 1,
                    f"twin pair '{pair.id}' has no committed fingerprint "
                    f"({FINGERPRINT_FILE} missing or unreadable); "
                    f"regenerate with {REGEN_ENV}=1 python -m "
                    f"repro.analysis.twins --write",
                ))
        return findings

    stored_pairs = stored.get("pairs", {})
    for pair in PAIRS:
        if not in_scope(pair):
            continue
        entry = stored_pairs.get(pair.id)
        resolved: Dict[str, Optional[_Resolved]] = {}
        drifted: List[str] = []
        for key, side in pair.sides():
            resolved[key] = resolve_side(side, repo_root)
        if entry is None:
            findings.append((
                pair.a.path,
                resolved["a"].line if resolved["a"] else 1,
                f"twin pair '{pair.id}' is declared in "
                f"repro.analysis.twins but absent from the committed "
                f"fingerprints; regenerate with {REGEN_ENV}=1",
            ))
            continue
        for key, side in pair.sides():
            live = resolved[key]
            pinned = entry.get(key)
            if live is None:
                findings.append((
                    side.path, 1,
                    f"twin pair '{pair.id}': cannot resolve "
                    f"{side.label()} in the live tree (moved or "
                    f"renamed?); update repro.analysis.twins and "
                    f"regenerate the fingerprints",
                ))
                continue
            if not isinstance(pinned, dict):
                drifted.append(key)
                continue
            if pinned.get("digest") != live.digest:
                drifted.append(key)
        for key in drifted:
            side = pair.a if key == "a" else pair.b
            assert side is not None
            live = resolved[key]
            assert live is not None
            pinned = entry.get(key) if isinstance(entry, dict) else None
            diff = _unit_diff(
                pinned.get("units", []) if isinstance(pinned, dict) else [],
                live.units,
            )
            if pair.b is None:
                twin_note = "single-sided pin"
            else:
                other = "b" if key == "a" else "a"
                twin_note = (
                    "its twin drifted too"
                    if other in drifted
                    else (
                        f"its twin "
                        f"{(pair.b if other == 'b' else pair.a).label()} "
                        f"did NOT change"
                    )
                )
            detail = ("; " + "; ".join(diff)) if diff else ""
            findings.append((
                side.path, live.line,
                f"twin pair '{pair.id}': {side.label()} changed since "
                f"the committed fingerprint ({twin_note}); mirror the "
                f"edit on the twin, then regenerate with {REGEN_ENV}=1 "
                f"python -m repro.analysis.twins --write --note '...'"
                f"{detail}",
            ))
    findings.extend(
        finding
        for finding in check_slot_coverage(repo_root)
        if linted_paths is None or finding[0] in linted_paths
    )
    return findings


def check_slot_coverage(repo_root: str) -> List[Tuple[str, int, str]]:
    """Semantic slot checks for the ``timing-slots`` pair.

    Fingerprints say *something* changed; these say what must stay
    true regardless: the slab's slot set must cover every scalar slot,
    and ``lane()`` must rebind every scalar *state* slot onto a slab
    row (a slot added to ``TimingCore`` but not wired through
    ``lane()`` would silently unshare that field).
    """
    scalar_side = Side("src/repro/dram/soa.py", "TimingCore.__slots__", "slots")
    batch_path = "src/repro/dram/soa_batch.py"
    batch_side = Side(batch_path, "BatchTimingCore.__slots__", "slots")
    findings: List[Tuple[str, int, str]] = []

    def parse(path: str) -> Optional[ast.Module]:
        try:
            with open(
                os.path.join(repo_root, *path.split("/")), "r",
                encoding="utf-8",
            ) as handle:
                return ast.parse(handle.read())
        except (OSError, SyntaxError):
            return None

    scalar_tree = parse(scalar_side.path)
    batch_tree = parse(batch_path)
    if scalar_tree is None or batch_tree is None:
        return findings
    scalar_node = _find_qualname(scalar_tree, scalar_side.qualname)
    batch_node = _find_qualname(batch_tree, batch_side.qualname)
    scalar_slots = _slot_names(scalar_node) if scalar_node else None
    batch_slots = _slot_names(batch_node) if batch_node else None
    if scalar_slots is None or batch_slots is None:
        return findings

    missing = [
        name
        for name in scalar_slots
        if name not in batch_slots and name not in _SLOT_PARAMS
    ] + [name for name in scalar_slots if name in _SLOT_PARAMS
         and name not in batch_slots]
    if missing:
        findings.append((
            batch_path, getattr(batch_node, "lineno", 1),
            f"BatchTimingCore.__slots__ is missing scalar TimingCore "
            f"slots {missing}; every scalar field needs a lane-major "
            f"column",
        ))

    lane_fn = _find_qualname(batch_tree, "BatchTimingCore.lane")
    if isinstance(lane_fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        rebound: Set[str] = set()
        for stmt in ast.walk(lane_fn):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Attribute):
                        rebound.add(target.attr)
        unwired = [
            name
            for name in scalar_slots
            if name not in _SLOT_PARAMS and name not in rebound
        ]
        if unwired:
            findings.append((
                batch_path, lane_fn.lineno,
                f"BatchTimingCore.lane() never rebinds scalar slots "
                f"{unwired} onto slab rows; lane views would silently "
                f"own private copies of those fields",
            ))
    return findings


# ----------------------------------------------------------------------
# In-file pairs (fixtures and future same-module twins).
# ----------------------------------------------------------------------

def in_file_pairs(tree: ast.Module) -> List[Tuple[str, str, str, int]]:
    """Parse ``REPRO_TWIN_PAIRS = ((id, fn_a, fn_b), ...)`` if present."""
    out: List[Tuple[str, str, str, int]] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "REPRO_TWIN_PAIRS"
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, (ast.Tuple, ast.List)):
            continue
        for elt in stmt.value.elts:
            if not isinstance(elt, (ast.Tuple, ast.List)):
                continue
            names = [
                e.value
                for e in elt.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if len(names) == 3:
                out.append((names[0], names[1], names[2], stmt.lineno))
    return out


def _normalized_function(node: ast.AST) -> Optional[str]:
    """Name-independent, docstring-free dump of one function."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    clone = ast.parse(ast.unparse(node)).body[0]
    assert isinstance(clone, (ast.FunctionDef, ast.AsyncFunctionDef))
    _strip_docstrings(clone)
    clone.name = "_"
    clone.decorator_list = []
    return ast.dump(clone, include_attributes=False)


def check_in_file(
    tree: ast.Module, path: str
) -> List[Tuple[str, int, str]]:
    """Check a module's declared in-file twin pairs for drift."""
    findings: List[Tuple[str, int, str]] = []
    for pair_id, name_a, name_b, line in in_file_pairs(tree):
        node_a = _find_qualname(tree, name_a)
        node_b = _find_qualname(tree, name_b)
        dump_a = _normalized_function(node_a) if node_a else None
        dump_b = _normalized_function(node_b) if node_b else None
        if dump_a is None or dump_b is None:
            missing = name_a if dump_a is None else name_b
            findings.append((
                path, line,
                f"in-file twin pair '{pair_id}' names {missing!r}, which "
                f"is not a function in this module",
            ))
            continue
        if dump_a != dump_b:
            anchor = getattr(node_b, "lineno", line)
            findings.append((
                path, anchor,
                f"in-file twin pair '{pair_id}': {name_b} is no longer "
                f"structurally identical to {name_a} (names and "
                f"docstrings excluded); mirror the edit on both sides",
            ))
    return findings


# ----------------------------------------------------------------------
# CLI: status / regeneration.
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: report drift, or ``--write`` to regenerate."""
    import argparse

    from repro.analysis.rules import find_repo_root

    parser = argparse.ArgumentParser(
        prog="repro-twins",
        description="Show or regenerate the committed twin fingerprints.",
    )
    parser.add_argument(
        "--write", action="store_true",
        help=f"rewrite {FINGERPRINT_FILE} (requires {REGEN_ENV}=1)",
    )
    parser.add_argument(
        "--note", default=os.environ.get("REPRO_TWIN_NOTE", ""),
        help="changelog note recorded with a regeneration",
    )
    parser.add_argument(
        "--repo-root", default=None, help="repo root (default: auto)"
    )
    args = parser.parse_args(argv)
    repo_root = args.repo_root or find_repo_root(os.getcwd())

    if args.write:
        if os.environ.get(REGEN_ENV) != "1":
            print(
                f"twins: refusing to regenerate without {REGEN_ENV}=1 "
                f"(deliberate-regeneration guard)",
                file=sys.stderr,
            )
            return 2
        path = write_fingerprints(repo_root, args.note)
        print(f"twins: wrote {os.path.relpath(path, repo_root)}")
        return 0

    findings = check_fingerprints(repo_root)
    for path, line, message in findings:
        print(f"{path}:{line}: [twin-drift] {message}")
    count = len(findings)
    noun = "pair side" if count == 1 else "pair sides"
    status = "drifted" if count else "all twin fingerprints match"
    print(
        f"twins: {count} {noun} {status}" if count else f"twins: {status}",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
