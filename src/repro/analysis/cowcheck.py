"""COW/aliasing-escape analysis over the shared dataflow layer.

The warm-pool snapshot machinery and the lane-major slab both rely on
*deliberate* aliasing: ``restore_state(cow=True)`` rebinds per-set
containers that are still shared with the snapshot until ``_own_set``
privatizes them, ``restore_rows(cow=True)`` installs immutable tuple
aliases that ``mark_dirty``/``mark_clean`` thaw on first write, and
``BatchTimingCore.lane()`` returns ``TimingCore`` views whose slots
*are* slab rows.  The invariant that keeps snapshots reusable is
"never mutate a possibly-shared value in place without first
privatizing it" — previously enforced only by code review.

This pass makes the invariant checkable.  A module opts in with an
in-file protocol declaration::

    REPRO_COW_PROTOCOL = {
        "shared_roots": ("_tags", "_free"),   # attrs holding COW containers
        "shared_calls": ("lane",),            # calls returning aliased views
        "privatizers": ("_own_set",),         # calls that unshare
    }

Modules listed in ``registry.COW_MODULES`` *must* declare a protocol
(``cow-unsafe-mutation`` fires on the module line otherwise); any
other module may declare one and get the same analysis.

For each function we run a forward may-alias dataflow (see
``flow.solve_forward``) with a three-level lattice per local name:

* ``NONE``   — not derived from a COW root,
* ``ROOT``   — the outer container itself (``self._tags``); the outer
  container is a fresh copy, so mutating *it* is safe,
* ``SHARED`` — an element view of a root (``self._tags[i]``,
  ``self._rows.get(k)``, ``slab.lane(i)``): possibly aliased with a
  snapshot or another lane.

In-place mutation of a ``SHARED`` value (subscript store/delete,
mutating method call, augmented assignment) is a finding unless some
*dominating* statement privatizes it — either a call to a declared
privatizer or a fresh-copy self-rebind (``lines = set(lines)``) of the
mutated name — or the line carries an intentional-sharing pragma::

    # reprolint: shares[lane timers decay in place by design]

The reason string is mandatory; an empty ``shares[]`` does not parse.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow import (
    CFG,
    State,
    build_cfg,
    iter_functions,
    join_max,
    solve_forward,
)

#: Lattice levels (ordered; join is per-name max).
NONE, ROOT, SHARED = 0, 1, 2

#: Method names treated as in-place mutation of their receiver.
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popleft", "popitem", "remove", "reverse",
    "setdefault", "sort", "update",
})

#: Call names that produce a fresh (unshared) copy of their argument.
FRESH_COPY_CALLS = frozenset({"set", "list", "dict", "frozenset", "tuple",
                              "sorted", "copy", "deepcopy"})


class Protocol:
    """A module's parsed ``REPRO_COW_PROTOCOL`` declaration."""

    __slots__ = ("shared_roots", "shared_calls", "privatizers", "line")

    def __init__(
        self,
        shared_roots: Tuple[str, ...],
        shared_calls: Tuple[str, ...],
        privatizers: Tuple[str, ...],
        line: int,
    ) -> None:
        self.shared_roots = shared_roots
        self.shared_calls = shared_calls
        self.privatizers = privatizers
        self.line = line


def parse_protocol(tree: ast.Module) -> Optional[Protocol]:
    """Extract ``REPRO_COW_PROTOCOL`` from a module, if declared."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "REPRO_COW_PROTOCOL"
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            return None
        fields: Dict[str, Tuple[str, ...]] = {}
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                fields[key.value] = tuple(
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
        return Protocol(
            fields.get("shared_roots", ()),
            fields.get("shared_calls", ()),
            fields.get("privatizers", ()),
            stmt.lineno,
        )
    return None


# ----------------------------------------------------------------------
# Expression classification.
# ----------------------------------------------------------------------

def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _Classifier:
    """Maps expressions to lattice levels under one protocol + state."""

    __slots__ = ("protocol",)

    def __init__(self, protocol: Protocol) -> None:
        self.protocol = protocol

    def level(self, node: Optional[ast.expr], state: State) -> int:
        """May-level of the value ``node`` evaluates to under ``state``."""
        if node is None:
            return NONE
        if isinstance(node, ast.Name):
            return state.get(node.id, NONE)
        if isinstance(node, ast.Attribute):
            if node.attr in self.protocol.shared_roots:
                return ROOT
            return NONE
        if isinstance(node, ast.Subscript):
            base = self.level(node.value, state)
            return SHARED if base >= ROOT else NONE
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in self.protocol.privatizers:
                return NONE
            if name in self.protocol.shared_calls:
                return SHARED
            if name in FRESH_COPY_CALLS:
                return NONE
            if name == "get" and isinstance(node.func, ast.Attribute):
                base = self.level(node.func.value, state)
                return SHARED if base >= ROOT else NONE
            return NONE
        if isinstance(node, (ast.Tuple, ast.List)):
            if any(self.level(elt, state) >= ROOT for elt in node.elts):
                return ROOT  # container of views: indexing it yields SHARED
            return NONE
        if isinstance(node, ast.IfExp):
            return max(
                self.level(node.body, state), self.level(node.orelse, state)
            )
        if isinstance(node, ast.NamedExpr):
            return self.level(node.value, state)
        if isinstance(node, ast.Starred):
            return self.level(node.value, state)
        return NONE

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        """Forward transfer for one statement (pure; returns new state)."""
        out = dict(state)
        if isinstance(stmt, ast.Assign):
            level = self.level(stmt.value, state)
            for target in stmt.targets:
                self._bind(target, level, out, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.level(stmt.value, state), out, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Iterating a root or a container of views yields views.
            iter_level = self.level(stmt.iter, state)
            element = SHARED if iter_level >= ROOT else NONE
            self._bind(stmt.target, element, out, state)
        elif isinstance(stmt, ast.AugAssign):
            pass  # level of the target is unchanged by +=
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self.level(item.context_expr, state),
                        out,
                        state,
                    )
        return out

    def _bind(
        self,
        target: ast.expr,
        level: int,
        out: State,
        state: State,
    ) -> None:
        if isinstance(target, ast.Name):
            if level == NONE:
                out.pop(target.id, None)
            else:
                out[target.id] = level
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking a container of views: each element may be a view.
            element = SHARED if level >= ROOT else NONE
            for elt in target.elts:
                self._bind(elt, element, out, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, level, out, state)
        # Attribute / Subscript targets do not bind local names.


# ----------------------------------------------------------------------
# Mutation-site extraction and anchoring.
# ----------------------------------------------------------------------

class _Mutation:
    """One in-place mutation site within a function body."""

    __slots__ = ("stmt", "target", "line", "verb")

    def __init__(
        self, stmt: ast.stmt, target: ast.expr, line: int, verb: str
    ) -> None:
        self.stmt = stmt      # the anchoring statement (for dominance)
        self.target = target  # the expression whose value is mutated
        self.line = line
        self.verb = verb


def _mutations_in(stmt: ast.stmt) -> List[_Mutation]:
    """Mutation sites syntactically inside one statement."""
    out: List[_Mutation] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                out.append(
                    _Mutation(stmt, target.value, stmt.lineno, "item store on")
                )
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                out.append(
                    _Mutation(
                        stmt, target.value, stmt.lineno, "attribute store on"
                    )
                )
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Subscript):
            out.append(
                _Mutation(
                    stmt, stmt.target.value, stmt.lineno,
                    "augmented item store on",
                )
            )
        elif isinstance(stmt.target, ast.Name):
            # ``x += [...]`` mutates lists in place; treat any augmented
            # assignment to a shared name as a mutation of its value.
            out.append(
                _Mutation(
                    stmt, stmt.target, stmt.lineno, "augmented assignment to"
                )
            )
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                out.append(
                    _Mutation(
                        stmt, target.value, stmt.lineno, "item delete on"
                    )
                )
    # Mutating method calls can appear in any expression position.  A
    # compound statement is placed in the CFG as a *header* while its
    # body statements are placed separately, so scan only the header
    # expressions here — body mutations are found at their own site.
    for root in _scan_roots(stmt):
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATING_METHODS:
                    out.append(
                        _Mutation(
                            stmt,
                            node.func.value,
                            getattr(node, "lineno", stmt.lineno),
                            f".{node.func.attr}() on",
                        )
                    )
    return out


def _scan_roots(stmt: ast.stmt) -> List[ast.AST]:
    """Subtrees of ``stmt`` owned by its own CFG placement."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # opaque nested scopes are analyzed separately
    return [stmt]


def _is_privatizing(stmt: ast.stmt, protocol: Protocol, name: str) -> bool:
    """Does ``stmt`` privatize ``name`` (or everything, via a privatizer)?

    Two forms count, both matched anywhere in the statement's subtree
    so that *guarded* privatization anchors (the common shape is an
    ``if`` whose condition decides whether unsharing is needed, and
    whose body does it): a call to a declared privatizer (set_assoc's
    ``if owned: tags = self._own_set(i)``), and a fresh-copy
    self-rebind of the mutated name (dbi's thaw,
    ``if isinstance(lines, tuple): lines = set(lines)``).  Dominance by
    the guard — not the guarded branch — is what makes the downstream
    mutation safe on every path: the condition is trusted to identify
    exactly the shared cases.
    """
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            call = _call_name(node)
            if call in protocol.privatizers:
                return True
        if name and isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
                and isinstance(node.value, ast.Call)
                and _call_name(node.value) in FRESH_COPY_CALLS
            ):
                return True
    return False


def _target_name(expr: ast.expr) -> str:
    return expr.id if isinstance(expr, ast.Name) else ""


def _describe(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover
        return "<expr>"


# ----------------------------------------------------------------------
# Per-function and per-module entry points.
# ----------------------------------------------------------------------

def check_function(
    qualname: str,
    node: ast.AST,
    protocol: Protocol,
) -> List[Tuple[int, str]]:
    """All unguarded shared-mutation findings in one function.

    Returns ``(line, message)`` tuples; pragma filtering happens in the
    caller, which owns the source text.
    """
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    cfg: CFG = build_cfg(node.body)
    classifier = _Classifier(protocol)
    pre_states = solve_forward(cfg, classifier.transfer, join=join_max)

    # Collect every statement in CFG order for the anchor scan.
    placed: List[ast.stmt] = []
    for block in cfg.blocks:
        placed.extend(block.stmts)

    findings: List[Tuple[int, str]] = []
    for block in cfg.blocks:
        for stmt in block.stmts:
            state = pre_states.get(id(stmt), {})
            for mutation in _mutations_in(stmt):
                level = classifier.level(mutation.target, state)
                if level != SHARED:
                    continue
                name = _target_name(mutation.target)
                anchored = False
                for candidate in placed:
                    if candidate is mutation.stmt:
                        continue
                    if not _is_privatizing(candidate, protocol, name):
                        continue
                    if cfg.stmt_dominates(candidate, mutation.stmt):
                        anchored = True
                        break
                if anchored:
                    continue
                findings.append((
                    mutation.line,
                    f"{qualname}: {mutation.verb} possibly-shared value "
                    f"'{_describe(mutation.target)}' is not dominated by a "
                    f"privatization ({', '.join(protocol.privatizers) or 'none declared'}) "
                    f"or fresh-copy rebind; privatize first or mark the "
                    f"line '# reprolint: shares[reason]'",
                ))
    return findings


def check_module(
    tree: ast.Module,
    path: str,
    must_declare: bool,
) -> List[Tuple[int, str]]:
    """COW findings for one module: protocol presence + per-function."""
    protocol = parse_protocol(tree)
    if protocol is None:
        if must_declare:
            return [(
                1,
                f"module is listed in registry.COW_MODULES but declares no "
                f"REPRO_COW_PROTOCOL; declare shared_roots/shared_calls/"
                f"privatizers so the aliasing pass can check it",
            )]
        return []
    findings: List[Tuple[int, str]] = []
    for qualname, fn in iter_functions(tree):
        findings.extend(check_function(qualname, fn, protocol))
    return findings
