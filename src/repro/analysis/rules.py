"""The reprolint rule catalogue: repo-specific AST correctness rules.

Three rule families guard the invariants PRs 1-3 built the fast paths
on (see DESIGN.md, "Correctness tooling"):

**Determinism** — the fast-path/oracle duality (event engine vs
polling, TimingCore vs Bank/Rank views, TraceBlocks vs generator,
snapshot restore vs cold warmup) is only testable because runs are
bit-reproducible.  Anything that injects wall-clock time, the global
RNG, or unordered iteration into sim code silently breaks that.

* ``determinism-global-random`` — no module-level ``random.*`` calls;
  randomness must flow through a seeded ``random.Random`` instance.
* ``determinism-wallclock`` — no ``time.time``/``perf_counter``/
  ``datetime.now`` and friends inside sim code; timestamps belong to
  the harness, not the model.
* ``determinism-unordered-iter`` — no iteration over sets (literals,
  ``set()``/``frozenset()`` calls, set methods) without an explicit
  ``sorted(...)``; result merging and scheduling must not depend on
  hash order.
* ``determinism-float-energy`` — no float accumulation into
  ``*energy*`` counters outside ``repro/power``; energy bookkeeping
  is centralized so streak-batched and per-command accounting stay
  bit-identical.
* ``determinism-digest-canonical`` — in digest modules
  (:data:`repro.analysis.registry.DIGEST_MODULE_PATHS`, the sweep
  service's content-addressed cache keys), no builtin ``hash()``
  (salted per process since PEP 456) and no ``json.dumps``/``dump``
  without ``sort_keys=True`` (insertion-ordered); a cache key that
  varies across processes defeats cross-job and cross-restart dedup.

**Oracle parity** — every registered fast path must say what its
oracle twin is and which equivalence tests pin the pairing:

* ``oracle-twin-undeclared`` — fast-path module lacks a resolvable
  ``ORACLE_TWIN`` declaration (or a registered module dropped its
  ``REPRO_FAST_PATH`` marker).
* ``oracle-test-missing`` — ``ORACLE_TESTS`` missing, names a test
  file that does not exist, or names one that never references the
  module.

**Hot-path hygiene** — rules for code on the per-event/per-command
path:

* ``hygiene-slots`` — dataclasses in hot modules must use
  ``slots=True`` (or define ``__slots__``).
* ``hygiene-try-in-loop`` — no ``try``/``except`` inside loop bodies
  in hot modules; hoist the handler out of the inner loop.
* ``hygiene-mutable-default`` — mutable default arguments are banned
  repo-wide.

**Compiled engine** — modules on the compiled-engine list
(:data:`repro.analysis.registry.COMPILED_MODULE_PATHS`, mirroring
``repro.engine.COMPILED_MODULES``) are built with mypyc in the
``.[compiled]`` install, so they must stay inside the construct subset
mypyc can compile:

* ``compiled-incompatible`` — slots dataclasses (the decorator
  *replaces* the class object), class keywords/metaclasses, multiple
  inheritance, non-allowlisted class decorators, ``__del__``,
  ``exec``/``eval``, star imports, function-nested classes, and
  attribute ``del`` all break (or silently deoptimize) the mypyc
  build; catching them at lint time keeps compile-list drift from
  failing only in the CI build leg.

**Dataflow passes (v2)** — whole-function/whole-repo analyses built
on :mod:`repro.analysis.flow` (see DESIGN.md §8):

* ``twin-drift`` — a declared oracle-twin pair (scalar loop ↔
  ``_Lane.advance``, ``issue_screen`` ↔ ``_screened_wake``,
  ``TimingCore`` slots ↔ slab columns, compiled-module APIs) changed
  without its committed fingerprint being regenerated
  (:mod:`repro.analysis.twins`), or an in-file ``REPRO_TWIN_PAIRS``
  pair diverged structurally.
* ``cow-unsafe-mutation`` — in-place mutation of a possibly-shared
  copy-on-write value not dominated by the declared privatization
  (:mod:`repro.analysis.cowcheck`); intentional sharing is declared
  with ``# reprolint: shares[reason]``.
* ``timing-unchecked-issue`` — a DRAM command-issue site whose
  function (and same-module callers) never consult the timing state
  the JEDEC constraint table mandates
  (:mod:`repro.analysis.constraints`).

Suppression: ``# reprolint: allow[rule-id]`` on the flagged line;
``# reprolint: skip-file`` anywhere disables the whole file;
``# reprolint: shares[reason]`` (reason required) declares an
intentional shared-mutation site to the COW pass.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

#: Sync/async function definitions share the default-checking logic.
_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

from repro.analysis import registry


@dataclass(frozen=True, slots=True)
class Rule:
    """One lint rule: stable id plus a one-line summary."""

    id: str
    family: str
    summary: str


ALL_RULES: Tuple[Rule, ...] = (
    Rule("determinism-global-random", "determinism",
         "module-level random.* call; use a seeded random.Random"),
    Rule("determinism-wallclock", "determinism",
         "wall-clock call (time.time/perf_counter/datetime.now) in sim code"),
    Rule("determinism-unordered-iter", "determinism",
         "iteration over an unordered set without sorted(...)"),
    Rule("determinism-float-energy", "determinism",
         "float accumulation into an energy counter outside repro/power"),
    Rule("determinism-digest-canonical", "determinism",
         "process-salted hash() or unsorted json serialization in a "
         "digest module"),
    Rule("oracle-twin-undeclared", "oracle-parity",
         "fast-path module without a resolvable ORACLE_TWIN declaration"),
    Rule("oracle-test-missing", "oracle-parity",
         "fast-path module without a live ORACLE_TESTS equivalence test"),
    Rule("hygiene-slots", "hot-path-hygiene",
         "dataclass on a hot path without slots=True/__slots__"),
    Rule("hygiene-try-in-loop", "hot-path-hygiene",
         "try/except inside a loop body on a hot path"),
    Rule("hygiene-mutable-default", "hot-path-hygiene",
         "mutable default argument"),
    Rule("compiled-incompatible", "compiled-engine",
         "mypyc-incompatible construct in a compiled-engine module"),
    Rule("twin-drift", "twin-parity",
         "oracle-twin pair edited without regenerating its fingerprint"),
    Rule("cow-unsafe-mutation", "cow-aliasing",
         "in-place mutation of a possibly-shared COW value without "
         "dominating privatization"),
    Rule("timing-unchecked-issue", "timing-coverage",
         "DRAM command issued without consulting the mandated timing state"),
)

RULE_IDS = frozenset(rule.id for rule in ALL_RULES)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_ALLOW_RE = re.compile(r"#\s*reprolint:\s*allow\[([a-z0-9\-,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file")
#: Intentional-sharing pragma for the COW pass; the reason is
#: mandatory — ``shares[]`` does not parse and therefore suppresses
#: nothing.
_SHARES_RE = re.compile(r"#\s*reprolint:\s*shares\[([^\]]+)\]")

#: ``time`` module functions that read the wall clock / host state.
_WALL_TIME_FNS = frozenset(
    {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
     "monotonic_ns", "process_time", "process_time_ns", "clock_gettime"}
)
#: ``datetime`` constructors that read the wall clock.
_WALL_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
#: ``random`` module attributes that are *not* the global RNG.
_RANDOM_SAFE_ATTRS = frozenset({"Random", "SystemRandom"})
#: Set methods returning unordered sets.
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)
#: Callables producing mutable containers (bad as argument defaults).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict",
     "OrderedDict", "Counter"}
)
#: Class decorators mypyc understands on native classes.  ``dataclass``
#: is allowed *without* ``slots=True`` (the slots variant replaces the
#: class object, which mypyc cannot compile).
_COMPILED_SAFE_CLASS_DECORATORS = frozenset({"dataclass", "final"})


def _allowed_lines(source: str) -> Dict[int, Set[str]]:
    """line number -> rule ids suppressed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            allowed[lineno] = ids
    return allowed


def _shares_lines(source: str) -> Set[int]:
    """Line numbers carrying a non-empty ``shares[reason]`` pragma."""
    shares: Set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SHARES_RE.search(line)
        if match and match.group(1).strip():
            shares.add(lineno)
    return shares


def _call_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a call target, best effort (``a.b.c`` or ``c``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_unordered_expr(node: ast.expr, set_names: Set[str]) -> bool:
    """True when ``node`` syntactically evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        if isinstance(target, ast.Name) and target.id in ("set", "frozenset"):
            return True
        if isinstance(target, ast.Attribute) and target.attr in _SET_METHODS:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered_expr(node.left, set_names) or _is_unordered_expr(
            node.right, set_names
        )
    return False


def _mentions_energy(target: ast.expr) -> bool:
    """True when an assignment target names an energy counter."""
    node: Optional[ast.AST] = target
    while node is not None:
        if isinstance(node, ast.Subscript):
            node = node.value
            continue
        if isinstance(node, ast.Attribute):
            if "energy" in node.attr.lower():
                return True
            node = node.value
            continue
        if isinstance(node, ast.Name):
            return "energy" in node.id.lower()
        return False
    return False


class _ModuleChecker(ast.NodeVisitor):
    """Single-pass visitor collecting findings for one module."""

    def __init__(
        self,
        path: str,
        source: str,
        *,
        hot_path: bool,
        energy_ok: bool,
        compiled: bool = False,
        digest: bool = False,
    ) -> None:
        self.path = path
        self.hot_path = hot_path
        self.energy_ok = energy_ok
        self.compiled = compiled
        self.digest = digest
        #: Function nesting depth (compiled rule: no classes in functions).
        self.func_depth = 0
        self.findings: List[Finding] = []
        #: Aliases the ``random`` / ``time`` / ``json`` modules are
        #: imported under, and names ``json.dumps``/``dump`` are bound
        #: to by ``from json import ...``.
        self.random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.json_aliases: Set[str] = set()
        self.json_dump_names: Set[str] = set()
        #: Names bound to set-valued expressions (per scope; coarse).
        self.set_names: Set[str] = set()
        self.loop_depth = 0
        # Module-level declarations the oracle rules read.
        self.declares_fast_path = False
        self.oracle_twin: Optional[object] = None
        self.oracle_tests: Optional[object] = None
        self.oracle_decl_line = 1

    # -- helpers -------------------------------------------------------
    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 1), rule, message)
        )

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.random_aliases.add(alias.asname or "random")
            elif alias.name == "time":
                self.time_aliases.add(alias.asname or "time")
            elif alias.name == "json":
                self.json_aliases.add(alias.asname or "json")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.compiled and any(alias.name == "*" for alias in node.names):
            self._add(
                node, "compiled-incompatible",
                f"star import from {node.module!r}; mypyc needs every "
                f"name statically resolvable — import them explicitly",
            )
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_SAFE_ATTRS:
                    self._add(
                        node, "determinism-global-random",
                        f"'from random import {alias.name}' pulls in the "
                        f"process-global RNG; use random.Random(seed)",
                    )
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_TIME_FNS:
                    self._add(
                        node, "determinism-wallclock",
                        f"'from time import {alias.name}' reads the wall "
                        f"clock inside sim code",
                    )
        elif node.module == "json":
            for alias in node.names:
                if alias.name in ("dumps", "dump"):
                    self.json_dump_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def _check_digest_call(self, node: ast.Call) -> None:
        """Digest-module canonicalization: no hash(), sorted JSON only."""
        func = node.func
        if isinstance(func, ast.Name) and func.id == "hash":
            self._add(
                node, "determinism-digest-canonical",
                "builtin hash() is salted per process (PEP 456); digest "
                "inputs must go through hashlib over canonical bytes",
            )
            return
        serializes = (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.json_aliases
            and func.attr in ("dumps", "dump")
        ) or (isinstance(func, ast.Name) and func.id in self.json_dump_names)
        if serializes and not any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value
            for kw in node.keywords
        ):
            self._add(
                node, "determinism-digest-canonical",
                "json serialization without sort_keys=True in a digest "
                "module; key order must not depend on dict insertion "
                "history",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self.digest:
            self._check_digest_call(node)
        if (
            self.compiled
            and isinstance(func, ast.Name)
            and func.id in ("exec", "eval")
        ):
            self._add(
                node, "compiled-incompatible",
                f"{func.id}() in a compiled-engine module; mypyc cannot "
                f"see dynamically executed code",
            )
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in self.random_aliases and attr not in _RANDOM_SAFE_ATTRS:
                self._add(
                    node, "determinism-global-random",
                    f"random.{attr}() uses the process-global RNG; "
                    f"draw from a seeded random.Random instead",
                )
            if base in self.time_aliases and attr in _WALL_TIME_FNS:
                self._add(
                    node, "determinism-wallclock",
                    f"time.{attr}() reads the wall clock inside sim code",
                )
            if attr in _WALL_DATETIME_FNS and "date" in base.lower():
                self._add(
                    node, "determinism-wallclock",
                    f"{base}.{attr}() reads the wall clock inside sim code",
                )
        elif isinstance(func, ast.Attribute):
            dotted = _call_name(func)
            if dotted and dotted.startswith("datetime.") and (
                func.attr in _WALL_DATETIME_FNS
            ):
                self._add(
                    node, "determinism-wallclock",
                    f"{dotted}() reads the wall clock inside sim code",
                )
        self.generic_visit(node)

    # -- unordered iteration ------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_unordered_expr(node.value, self.set_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.discard(target.id)
            self._check_oracle_decl(node)
        self.generic_visit(node)

    def _check_oracle_decl(self, node: ast.Assign) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "REPRO_FAST_PATH":
                if isinstance(node.value, ast.Constant) and node.value.value:
                    self.declares_fast_path = True
                    self.oracle_decl_line = node.lineno
            elif target.id == "ORACLE_TWIN":
                self.oracle_twin = node.value
            elif target.id == "ORACLE_TESTS":
                self.oracle_tests = node.value

    def _flag_iter(self, node: ast.AST, iterable: ast.expr) -> None:
        if _is_unordered_expr(iterable, self.set_names):
            self._add(
                node, "determinism-unordered-iter",
                "iterating an unordered set; wrap it in sorted(...) so "
                "merge/scheduling order is deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_iter(node, node.iter)
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._flag_iter(node.iter, node.iter)
        self.generic_visit(node)

    # -- try/except in hot loops --------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        if self.hot_path and self.loop_depth > 0:
            self._add(
                node, "hygiene-try-in-loop",
                "try/except inside a loop body on a hot path; hoist the "
                "handler out of the per-cycle loop",
            )
        self.generic_visit(node)

    # -- energy accumulation ------------------------------------------
    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            not self.energy_ok
            and isinstance(node.op, (ast.Add, ast.Sub))
            and _mentions_energy(node.target)
        ):
            self._add(
                node, "determinism-float-energy",
                "accumulating into an energy counter outside repro/power; "
                "route it through the PowerAccountant helpers",
            )
        self.generic_visit(node)

    # -- functions: mutable defaults, fresh loop context ---------------
    def _check_defaults(self, node: _FunctionNode) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            bad = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            )
            if isinstance(default, ast.Call):
                name = _call_name(default.func)
                bad = bad or (
                    name is not None
                    and name.rsplit(".", 1)[-1] in _MUTABLE_FACTORIES
                )
            if bad:
                self._add(
                    node, "hygiene-mutable-default",
                    f"mutable default argument on {node.name}(); default "
                    f"to None and create inside the body",
                )

    def _visit_function(self, node: _FunctionNode) -> None:
        self._check_defaults(node)
        outer_depth, self.loop_depth = self.loop_depth, 0
        outer_sets, self.set_names = self.set_names, set()
        self.func_depth += 1
        self.generic_visit(node)
        self.func_depth -= 1
        self.loop_depth = outer_depth
        self.set_names = outer_sets

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- dataclass slots -----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot_path:
            self._check_dataclass_slots(node)
        if self.compiled:
            self._check_compiled_class(node)
        self.generic_visit(node)

    # -- attribute del (compiled) --------------------------------------
    def visit_Delete(self, node: ast.Delete) -> None:
        if self.compiled and any(
            isinstance(target, ast.Attribute) for target in node.targets
        ):
            self._add(
                node, "compiled-incompatible",
                "'del obj.attr' in a compiled-engine module; native "
                "attributes cannot be unbound — assign a sentinel instead",
            )
        self.generic_visit(node)

    def _check_compiled_class(self, node: ast.ClassDef) -> None:
        """Flag class-level constructs mypyc cannot compile natively."""
        if self.func_depth > 0:
            self._add(
                node, "compiled-incompatible",
                f"class {node.name} defined inside a function; mypyc "
                f"only compiles module-level classes",
            )
        if node.keywords:
            kws = ", ".join(kw.arg or "**" for kw in node.keywords)
            self._add(
                node, "compiled-incompatible",
                f"class {node.name} uses class keywords ({kws}); "
                f"metaclasses/keywords are unsupported in mypyc",
            )
        if len(node.bases) > 1:
            self._add(
                node, "compiled-incompatible",
                f"class {node.name} uses multiple inheritance; mypyc "
                f"native classes allow a single base",
            )
        for deco in node.decorator_list:
            call = deco if not isinstance(deco, ast.Call) else deco.func
            name = _call_name(call)
            base = name.rsplit(".", 1)[-1] if name else None
            if base == "dataclass":
                if isinstance(deco, ast.Call) and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value
                    for kw in deco.keywords
                ):
                    self._add(
                        deco, "compiled-incompatible",
                        f"@dataclass(slots=True) on {node.name}; the "
                        f"slots decorator replaces the class object, "
                        f"which mypyc cannot compile — use a plain "
                        f"__slots__ class",
                    )
                continue
            if base not in _COMPILED_SAFE_CLASS_DECORATORS:
                self._add(
                    deco, "compiled-incompatible",
                    f"decorator @{name or '?'} on class {node.name}; "
                    f"mypyc only supports "
                    f"{sorted(_COMPILED_SAFE_CLASS_DECORATORS)} on "
                    f"native classes",
                )
        for stmt in node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__del__"
            ):
                self._add(
                    stmt, "compiled-incompatible",
                    f"__del__ on {node.name}; finalizers are unsupported "
                    f"on mypyc native classes",
                )

    def _check_dataclass_slots(self, node: ast.ClassDef) -> None:
        dataclass_deco = None
        for deco in node.decorator_list:
            name = _call_name(deco.func if isinstance(deco, ast.Call) else deco)
            if name and name.rsplit(".", 1)[-1] == "dataclass":
                dataclass_deco = deco
                break
        if dataclass_deco is None:
            return
        if isinstance(dataclass_deco, ast.Call):
            for kw in dataclass_deco.keywords:
                if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                    if kw.value.value:
                        return
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return
        self._add(
            node, "hygiene-slots",
            f"dataclass {node.name} on a hot path without slots=True; "
            f"per-event instances pay a __dict__ each",
        )


def _resolve_twin(twin: str, repo_root: str) -> bool:
    """True if a dotted ``ORACLE_TWIN`` resolves to a module under src/.

    The declaration may point at a module (``repro.dram.bank``) or an
    attribute inside one (``repro.sim.system.System._run_polling``):
    components are stripped from the right until a file matches.
    """
    parts = twin.split(".")
    while parts:
        candidate = os.path.join(repo_root, "src", *parts) + ".py"
        if os.path.isfile(candidate):
            return True
        init = os.path.join(repo_root, "src", *parts, "__init__.py")
        if os.path.isfile(init):
            return True
        parts = parts[:-1]
    return False


def _const_strings(node: ast.expr) -> Optional[List[str]]:
    """Extract a string or tuple/list-of-strings constant, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            out.append(element.value)
        return out
    return None


def _check_oracle_parity(
    checker: _ModuleChecker, path: str, repo_root: str
) -> None:
    """Apply the oracle-parity rules after the AST pass."""
    registered = registry.is_registered_fast_path(path)
    if registered and not checker.declares_fast_path:
        checker.findings.append(Finding(
            path, 1, "oracle-twin-undeclared",
            "module is a registered fast path but lacks the "
            "'REPRO_FAST_PATH = True' marker",
        ))
    if not (registered or checker.declares_fast_path):
        return
    line = checker.oracle_decl_line

    twins: Optional[List[str]] = None
    if checker.oracle_twin is None:
        checker.findings.append(Finding(
            path, line, "oracle-twin-undeclared",
            "fast-path module must declare ORACLE_TWIN = "
            "'<dotted.path.of.oracle>' naming its slow reference twin",
        ))
    else:
        twins = _const_strings(checker.oracle_twin)
        if not twins:
            checker.findings.append(Finding(
                path, checker.oracle_twin.lineno, "oracle-twin-undeclared",
                "ORACLE_TWIN must be a string (or tuple of strings) "
                "constant",
            ))
        else:
            for twin in twins:
                if not _resolve_twin(twin, repo_root):
                    checker.findings.append(Finding(
                        path, checker.oracle_twin.lineno,
                        "oracle-twin-undeclared",
                        f"ORACLE_TWIN {twin!r} does not resolve to a "
                        f"module under src/",
                    ))

    module_stem = os.path.splitext(os.path.basename(path))[0]
    if checker.oracle_tests is None:
        checker.findings.append(Finding(
            path, line, "oracle-test-missing",
            "fast-path module must declare ORACLE_TESTS = ('tests/...',) "
            "naming the equivalence tests that pin it to its twin",
        ))
        return
    tests = _const_strings(checker.oracle_tests)
    if not tests:
        checker.findings.append(Finding(
            path, checker.oracle_tests.lineno, "oracle-test-missing",
            "ORACLE_TESTS must be a non-empty tuple of repo-relative "
            "test paths",
        ))
        return
    for test_rel in tests:
        test_path = os.path.join(repo_root, test_rel)
        if not os.path.isfile(test_path):
            checker.findings.append(Finding(
                path, checker.oracle_tests.lineno, "oracle-test-missing",
                f"equivalence test {test_rel!r} does not exist",
            ))
            continue
        with open(test_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if module_stem not in text:
            checker.findings.append(Finding(
                path, checker.oracle_tests.lineno, "oracle-test-missing",
                f"equivalence test {test_rel!r} never references "
                f"'{module_stem}'",
            ))


def find_repo_root(start: str) -> str:
    """Walk up from ``start`` to the directory holding pyproject.toml."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        if os.path.isfile(os.path.join(current, "pyproject.toml")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return os.getcwd()
        current = parent


def check_file(
    path: str,
    repo_root: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one file; returns surviving findings (pragmas applied)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    if _SKIP_FILE_RE.search(source):
        return []
    if repo_root is None:
        repo_root = find_repo_root(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, "syntax-error", str(exc))]

    checker = _ModuleChecker(
        path,
        source,
        hot_path=registry.is_hot_path(path, source),
        energy_ok=registry.allows_energy_accumulation(path),
        compiled=registry.is_compiled_module(path, source),
        digest=registry.is_digest_module(path, source),
    )
    checker.visit(tree)
    _check_oracle_parity(checker, path, repo_root)
    _run_dataflow_passes(checker, tree, path, source)

    allowed = _allowed_lines(source)
    shares = _shares_lines(source)
    findings = [
        finding
        for finding in checker.findings
        if finding.rule not in allowed.get(finding.line, ())
        and not (
            finding.rule == "cow-unsafe-mutation" and finding.line in shares
        )
    ]
    if select:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def _run_dataflow_passes(
    checker: _ModuleChecker, tree: ast.Module, path: str, source: str
) -> None:
    """Apply the v2 dataflow passes (COW, timing, in-file twins).

    The repo-wide twin *fingerprint* check lives in
    :func:`repro.analysis.lint.lint_paths` — it is a property of the
    tree, not of any one file.
    """
    from repro.analysis import constraints, cowcheck, twins

    for line, message in cowcheck.check_module(
        tree, path, must_declare=registry.is_cow_module(path)
    ):
        checker.findings.append(
            Finding(path, line, "cow-unsafe-mutation", message)
        )
    if constraints.applies_to(path, source):
        for line, message in constraints.check_module(tree, path):
            checker.findings.append(
                Finding(path, line, "timing-unchecked-issue", message)
            )
    for fpath, line, message in twins.check_in_file(tree, path):
        checker.findings.append(
            Finding(fpath, line, "twin-drift", message)
        )
