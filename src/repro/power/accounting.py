"""Runtime DRAM power/energy accounting (Micron power-calculator style).

The simulator reports events (activations with their granularity, read
and write bursts with the fraction of bytes actually driven, refreshes)
and background residencies; the accountant converts them to energy per
category and produces the breakdowns used by Figures 2 and 12 and the
energy/EDP results of Figure 13.

Categories follow Figure 2 of the paper:

* ``act_pre`` — row activation + bank precharge pairs,
* ``rd`` / ``wr`` — column-access core power,
* ``rd_io`` — read I/O + read termination,
* ``wr_io`` — write ODT + write termination,
* ``bg`` — background standby/power-down,
* ``ref`` — refresh.

Energies are tracked in pJ; reported in mJ / mW.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.dram.timing import TimingParams
from repro.power.params import PowerParams

#: Breakdown category names in the order of Figure 2.
CATEGORIES = ("act_pre", "rd", "wr", "rd_io", "wr_io", "bg", "ref")


@dataclass
class PowerBreakdown:
    """Energy per category plus derived powers and fractions."""

    energy_pj: Dict[str, float]
    runtime_ns: float

    @property
    def total_pj(self) -> float:
        return sum(self.energy_pj.values())

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    def energy_mj(self, category: str) -> float:
        return self.energy_pj[category] * 1e-9

    def power_mw(self, category: str) -> float:
        if self.runtime_ns <= 0:
            return 0.0
        return self.energy_pj[category] / self.runtime_ns

    @property
    def total_power_mw(self) -> float:
        """Average total DRAM power over the run (mW)."""
        if self.runtime_ns <= 0:
            return 0.0
        return self.total_pj / self.runtime_ns

    def fraction(self, category: str) -> float:
        total = self.total_pj
        return self.energy_pj[category] / total if total else 0.0

    def fractions(self) -> Dict[str, float]:
        return {c: self.fraction(c) for c in CATEGORIES}

    def as_dict_mw(self) -> Dict[str, float]:
        return {c: self.power_mw(c) for c in CATEGORIES}


class PowerAccountant:
    """Accumulates DRAM energy from simulator events.

    One accountant covers the whole DRAM system; per-chip parameter
    values are multiplied by ``chips_per_rank`` internally.
    """

    def __init__(
        self,
        params: PowerParams,
        timing: TimingParams,
        chips_per_rank: int = 8,
        scale_wr_core_with_mask: bool = True,
        ecc_chips: int = 0,
    ) -> None:
        self.params = params
        self.timing = timing
        self.chips_per_rank = chips_per_rank
        #: Extra chips storing ECC codes (x72 DIMMs).  Per Section 4.2
        #: an ECC chip's PRA pin is tied off, so it always performs
        #: full-row activations and receives/sends full bursts.
        self.ecc_chips = ecc_chips
        #: Whether the core write power scales with the driven-byte
        #: fraction under PRA (unselected MATs see "don't care" data).
        self.scale_wr_core_with_mask = scale_wr_core_with_mask
        self.energy_pj: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        # Event counters (useful for stats and tests).
        self.activations_by_granularity: Dict[int, int] = {g: 0 for g in range(1, 9)}
        self.read_bursts = 0
        self.write_bursts = 0
        self.refreshes = 0
        #: fraction -> (granularity bucket, energy in pJ).  Activation
        #: energy is a pure function of the fraction, and a run sees
        #: only a handful of distinct fractions (9 mask popcounts under
        #: PRA), so memoizing it keeps the per-ACT cost to a dict probe
        #: while adding bit-identical energy values.
        self._act_cache: Dict[float, tuple] = {}

    # ------------------------------------------------------------------
    @property
    def _burst_ns(self) -> float:
        return self.timing.cycles_to_ns(self.timing.tburst)

    def on_activate(self, granularity_eighths: int) -> None:
        """One ACT-PRE pair at the given granularity (rank-wide)."""
        self.activations_by_granularity[granularity_eighths] += 1
        power = self.params.act_power(granularity_eighths)
        energy = power * self.timing.row_cycle_ns * self.chips_per_rank
        if self.ecc_chips:
            energy += (
                self.params.act_power(8) * self.timing.row_cycle_ns * self.ecc_chips
            )
        self.energy_pj["act_pre"] += energy

    def on_activate_fraction(self, fraction: float) -> None:
        """One ACT-PRE pair opening an arbitrary fraction of the row.

        Used by Half-DRAM (0.5) and Half-DRAM + PRA (g/16); the
        granularity histogram buckets by the nearest eighth (min 1).
        """
        cached = self._act_cache.get(fraction)
        if cached is None:
            bucket = min(8, max(1, round(fraction * 8)))
            power = self.params.act_power_fraction(fraction)
            energy = power * self.timing.row_cycle_ns * self.chips_per_rank
            if self.ecc_chips:
                energy += (
                    self.params.act_power(8) * self.timing.row_cycle_ns * self.ecc_chips
                )
            cached = (bucket, energy)
            self._act_cache[fraction] = cached
        self.activations_by_granularity[cached[0]] += 1
        self.energy_pj["act_pre"] += cached[1]

    def on_read_burst(self, other_ranks: int = 1, count: int = 1) -> None:
        """``count`` cache-line read bursts from a rank.

        The batched form exists for burst-streak commits: all bursts of
        a streak share ``other_ranks``, so their energy is ``count``
        times one burst's.  ``count=1`` is bitwise-identical to the
        historical single-burst call (``x * 1`` is exact in floats).
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self.read_bursts += count
        chips = self.chips_per_rank + self.ecc_chips
        burst = self._burst_ns
        self.energy_pj["rd"] += self.params.rd_mw * burst * chips * count
        io = self.params.rd_io_mw * burst * chips
        io += self.params.rd_term_mw * burst * chips * other_ranks
        self.energy_pj["rd_io"] += io * self.params.io_scale * count

    def on_write_burst(
        self, driven_fraction: float = 1.0, other_ranks: int = 1, count: int = 1
    ) -> None:
        """``count`` cache-line write bursts to a rank.

        ``driven_fraction`` is the share of bytes actually driven on
        the bus: under PRA only the dirty words are transferred, so
        ODT/termination (and optionally core write) energy scale down.
        Batched calls (streak commits group writes by driven fraction)
        charge ``count`` times one burst's energy; ``count=1`` matches
        the historical single-burst call bit for bit.
        """
        if not 0.0 < driven_fraction <= 1.0:
            raise ValueError(f"driven_fraction must be in (0, 1], got {driven_fraction}")
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self.write_bursts += count
        chips = self.chips_per_rank
        ecc = self.ecc_chips
        burst = self._burst_ns
        core_fraction = driven_fraction if self.scale_wr_core_with_mask else 1.0
        self.energy_pj["wr"] += self.params.wr_mw * burst * (
            chips * core_fraction + ecc
        ) * count
        io = self.params.wr_odt_mw * burst * (chips * driven_fraction + ecc)
        io += self.params.wr_term_mw * burst * other_ranks * (
            chips * driven_fraction + ecc
        )
        self.energy_pj["wr_io"] += io * self.params.io_scale * count

    def on_refresh(self) -> None:
        """One all-bank refresh of a rank (duration tRFC)."""
        self.refreshes += 1
        trfc_ns = self.timing.cycles_to_ns(self.timing.trfc)
        chips = self.chips_per_rank + self.ecc_chips
        self.energy_pj["ref"] += self.params.ref_mw * trfc_ns * chips

    def add_background(self, residency_cycles: Dict[str, int]) -> None:
        """Charge one rank's background residency (from ``Rank``)."""
        tck = self.timing.tck_ns
        chips = self.chips_per_rank + self.ecc_chips
        p = self.params
        self.energy_pj["bg"] += residency_cycles.get("act_stby", 0) * tck * p.act_stby_mw * chips
        self.energy_pj["bg"] += residency_cycles.get("pre_stby", 0) * tck * p.pre_stby_mw * chips
        self.energy_pj["bg"] += residency_cycles.get("pre_pdn", 0) * tck * p.pre_pdn_mw * chips

    # ------------------------------------------------------------------
    def breakdown(self, runtime_cycles: int) -> PowerBreakdown:
        """Finalize into a :class:`PowerBreakdown` for a run length."""
        runtime_ns = self.timing.cycles_to_ns(runtime_cycles)
        return PowerBreakdown(energy_pj=dict(self.energy_pj), runtime_ns=runtime_ns)
