"""IDD-based activation power, Equations 1 and 2 of the paper.

The pure row-activation power is extracted from datasheet currents by
subtracting the background current drawn during the row cycle:

    I_ACT = IDD0 - (IDD3N * tRAS + IDD2N * (tRC - tRAS)) / tRC     (Eq. 1)
    P_ACT = VDD * I_ACT                                            (Eq. 2)

IDD0 is the activate current averaged over back-to-back row cycles,
IDD3N the active-standby current (at least one bank open, i.e. during
tRAS) and IDD2N the precharge-standby current (during tRC - tRAS).
"""

from __future__ import annotations

from repro.power.params import IDDValues


def pure_activation_current_ma(idd: IDDValues) -> float:
    """Eq. 1: background-corrected activation current in mA."""
    if idd.trc_ns <= 0 or not 0 < idd.tras_ns <= idd.trc_ns:
        raise ValueError("need 0 < tRAS <= tRC")
    background = (
        idd.idd3n * idd.tras_ns + idd.idd2n * (idd.trc_ns - idd.tras_ns)
    ) / idd.trc_ns
    return idd.idd0 - background


def pure_activation_power_mw(idd: IDDValues) -> float:
    """Eq. 2: pure row-activation power in mW."""
    return idd.vdd * pure_activation_current_ma(idd)


def activation_energy_pj(idd: IDDValues) -> float:
    """Energy of one ACT-PRE pair implied by Eq. 1-2 (per chip, pJ)."""
    return pure_activation_power_mw(idd) * idd.trc_ns
