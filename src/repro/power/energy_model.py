"""Analytic activation-energy and die-area model (CACTI-3DD stand-in).

Reproduces Table 2 (die area and row-activation energy breakdown of a
2Gb x8 DDR3-1600 chip at the 20 nm node) and Figure 9 (activation
energy vs. number of MATs activated).

The structure the model captures, per Section 5.1.1:

* per-MAT energy (local bitlines, local sense amplifiers, local
  wordline, local row decoder) scales linearly with the number of MATs
  activated;
* per-bank energy (row-activation bus, row predecoder) is shared by all
  MATs of the sub-array and is paid in full by any activation —
  this is why halving the MATs does not halve the energy (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: MATs per sub-array in the baseline chip.
MATS_PER_SUBARRAY = 16


@dataclass(frozen=True)
class ActivationEnergyModel:
    """Row-activation energy components (pJ), Table 2 defaults."""

    local_bitline_pj: float = 15.583
    local_sense_amp_pj: float = 1.257
    local_wordline_pj: float = 0.046
    row_decoder_pj: float = 0.035
    row_act_bus_pj: float = 17.944
    row_predecoder_pj: float = 0.072

    @property
    def per_mat_pj(self) -> float:
        """Energy of activating one MAT (Table 2: 16.921 pJ)."""
        return (
            self.local_bitline_pj
            + self.local_sense_amp_pj
            + self.local_wordline_pj
            + self.row_decoder_pj
        )

    @property
    def shared_pj(self) -> float:
        """Per-bank shared energy paid by any activation (18.016 pJ)."""
        return self.row_act_bus_pj + self.row_predecoder_pj

    @property
    def full_row_pj(self) -> float:
        """Energy of a full-row activation (Table 2: 288.752 pJ)."""
        return self.energy_pj(MATS_PER_SUBARRAY)

    def energy_pj(self, mats: int) -> float:
        """Activation energy when ``mats`` MATs are opened (Fig. 9)."""
        if not 0 < mats <= MATS_PER_SUBARRAY:
            raise ValueError(f"mats must be 1..{MATS_PER_SUBARRAY}, got {mats}")
        return self.shared_pj + mats * self.per_mat_pj

    def scaling_factor(self, mats: int) -> float:
        """Energy relative to a full-row activation (Fig. 9 y-axis)."""
        return self.energy_pj(mats) / self.full_row_pj

    def granularity_scaling(self) -> "Tuple[float, ...]":
        """Scaling factors for granularities 1/8 .. 8/8 (2..16 MATs).

        These are the factors the paper projects onto the industrial
        P_ACT parameter to build the ACT row of Table 3.
        """
        return tuple(self.scaling_factor(2 * g) for g in range(1, 9))

    def breakdown(self) -> Dict[str, float]:
        """Component energies of a full-row activation (Table 2)."""
        return {
            "local_bitline": self.local_bitline_pj * MATS_PER_SUBARRAY,
            "local_sense_amp": self.local_sense_amp_pj * MATS_PER_SUBARRAY,
            "local_wordline": self.local_wordline_pj * MATS_PER_SUBARRAY,
            "row_decoder": self.row_decoder_pj * MATS_PER_SUBARRAY,
            "row_act_bus": self.row_act_bus_pj,
            "row_predecoder": self.row_predecoder_pj,
        }


@dataclass(frozen=True)
class DieAreaModel:
    """Die-area components of the 2Gb chip (mm^2), Table 2 defaults."""

    dram_cell_mm2: float = 4.677
    sense_amp_mm2: float = 1.909
    row_predecoder_mm2: float = 0.067
    local_wordline_driver_mm2: float = 1.617
    #: Remaining periphery (column logic, I/O, pads) to reach the
    #: published 11.884 mm^2 total.
    other_periphery_mm2: float = 3.614

    @property
    def total_mm2(self) -> float:
        """Total die area (Table 2: 11.884 mm^2)."""
        return (
            self.dram_cell_mm2
            + self.sense_amp_mm2
            + self.row_predecoder_mm2
            + self.local_wordline_driver_mm2
            + self.other_periphery_mm2
        )

    def pra_latch_overhead(
        self, latch_area_um2: float = 1.97, latches: int = 8
    ) -> float:
        """Fractional die-area overhead of the per-bank PRA latches.

        Section 4.2: eight 8-bit PRA latches at 1.97 um^2 each are a
        ~0.13 % overhead... the paper's 0.13 % figure normalizes a
        latch *macro* per bank (one 8-bit latch is 8 scaled latch
        cells); we expose the raw computation and let callers pick the
        normalization.  With 8 cells per latch the result is ~0.1 %.
        """
        total_um2 = self.total_mm2 * 1e6
        return latches * 8 * latch_area_um2 / total_um2

    def wordline_gate_overhead(self) -> float:
        """Fractional area overhead of the per-MAT wordline AND gates.

        Section 4.2 cites ~3 % for the baseline 2Gb chip based on the
        practical analysis in the Microbank paper.
        """
        return 0.03


@dataclass(frozen=True)
class FGDOverheadModel:
    """Cache-side overheads of fine-grained dirty bits (Section 4.2).

    CACTI estimates at 22 nm from the paper: adding 7 extra dirty bits
    per 64 B line costs, relative to the unmodified cache:
    """

    l1_area: float = 0.0031
    l1_dynamic_energy: float = 0.0012
    l1_leakage: float = 0.0126
    l2_area: float = 0.0109
    l2_dynamic_energy: float = 0.0041
    l2_leakage: float = 0.0139

    @staticmethod
    def extra_bits_per_line() -> int:
        """FGD adds 7 bits on top of the existing single dirty bit."""
        return 7

    @staticmethod
    def storage_overhead_fraction(line_bytes: int = 64, tag_bits: int = 36) -> float:
        """First-order storage overhead: extra bits / (data + tag) bits."""
        line_bits = line_bytes * 8 + tag_bits + 2  # data + tag + valid + dirty
        return FGDOverheadModel.extra_bits_per_line() / line_bits
