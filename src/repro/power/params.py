"""DRAM power parameters (Table 3 of the paper).

All values are *per chip* in milliwatts, following the Micron
TN-41-01 power-calculator convention the paper uses:

* ``act`` powers are the average power of back-to-back ACT-PRE pairs at
  the minimum row cycle tRC, so one activation costs
  ``act[g] * tRC`` (mW x ns = pJ) of energy;
* ``rd``/``wr`` are the core burst powers at 100 % data-bus
  utilization, so one line transfer costs ``rd * t_burst`` of energy;
* ``rd_io``/``wr_odt`` are the I/O powers of the rank driving or
  receiving data, and ``rd_term``/``wr_term`` the termination powers
  dissipated in *each other rank* sharing the channel;
* background powers are charged by residency (active standby,
  precharge standby, precharge power-down);
* ``ref`` is the power drawn during a refresh operation (duration
  tRFC, every tREFI).

``act_mw`` indexes activation power by granularity in eighths of a row
(index 1 = one-eighth row .. 8 = full row), reproducing the ACT row of
Table 3: 3.7 .. 22.2 mW.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: ACT-PRE power (mW) by granularity in eighths, per Table 3.
TABLE3_ACT_MW: Dict[int, float] = {
    8: 22.2,
    7: 19.6,
    6: 16.9,
    5: 14.3,
    4: 11.6,
    3: 9.1,
    2: 6.4,
    1: 3.7,
}


@dataclass(frozen=True)
class IDDValues:
    """Datasheet currents (mA) used by Eq. 1-2 of the paper.

    IDD0 is chosen so that Eq. 1-2 reproduce the paper's 22.2 mW
    full-row activation power for the 2Gb x8 DDR3-1600 baseline part.
    """

    idd0: float = 55.67
    idd2n: float = 38.0
    idd3n: float = 42.0
    vdd: float = 1.5
    tras_ns: float = 35.0
    trc_ns: float = 48.75


@dataclass(frozen=True)
class PowerParams:
    """Per-chip power parameters of the baseline DDR3-1600 part."""

    #: ACT-PRE power by granularity (eighths of a row), mW.
    act_mw: Dict[int, float] = field(default_factory=lambda: dict(TABLE3_ACT_MW))
    rd_mw: float = 78.0
    wr_mw: float = 93.0
    rd_io_mw: float = 4.6
    wr_odt_mw: float = 21.2
    rd_term_mw: float = 15.5
    wr_term_mw: float = 15.4
    act_stby_mw: float = 42.0
    pre_stby_mw: float = 27.0
    pre_pdn_mw: float = 18.0
    ref_mw: float = 210.0
    #: Multiplier applied to the four I/O parameters when charging
    #: burst I/O energy.  The Table-3 I/O values are bare per-chip DQ
    #: figures; the paper's Figure-2 I/O shares (14 % average, 19 %
    #: max of total DRAM power) imply the full interface energy
    #: (DQ + DQS/DM strobes and controller-side termination) is about
    #: 3x that, so the accountant scales by this calibration factor.
    io_scale: float = 3.0
    idd: IDDValues = IDDValues()

    def act_power(self, granularity_eighths: int) -> float:
        """ACT-PRE power (mW) for an activation of the given granularity."""
        if granularity_eighths not in self.act_mw:
            raise ValueError(f"granularity must be 1..8, got {granularity_eighths}")
        return self.act_mw[granularity_eighths]

    def act_power_fraction(self, fraction: float) -> float:
        """ACT-PRE power (mW) for an arbitrary activated fraction.

        Piecewise-linear through the Table-3 points (g/8, act_mw[g]);
        below 1/8 (possible under Half-DRAM + PRA, where one word lane
        is half a MAT group) the 1/8..2/8 segment is extrapolated,
        which converges to the shared-structure intercept of the
        Figure 9 energy curve.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        eighths = fraction * 8.0
        low = max(1, min(7, int(eighths)))
        high = low + 1
        p_low, p_high = self.act_mw[low], self.act_mw[high]
        return p_low + (eighths - low) * (p_high - p_low)

    def at_voltage(self, vdd: float) -> "PowerParams":
        """First-order voltage scaling (e.g. DDR3L at 1.35 V).

        Dynamic components (activation, column access, I/O) scale with
        VDD^2; background and refresh, dominated by DLL/peripheral and
        leakage currents that fall roughly linearly, scale with VDD.
        A coarse model - good for "how much would DDR3L buy on top of
        PRA" studies, not for datasheet-accurate numbers.
        """
        if vdd <= 0:
            raise ValueError("VDD must be positive")
        base = self.idd.vdd
        dyn = (vdd / base) ** 2
        stat = vdd / base
        return PowerParams(
            act_mw={g: p * dyn for g, p in self.act_mw.items()},
            rd_mw=self.rd_mw * dyn,
            wr_mw=self.wr_mw * dyn,
            rd_io_mw=self.rd_io_mw * dyn,
            wr_odt_mw=self.wr_odt_mw * dyn,
            rd_term_mw=self.rd_term_mw * dyn,
            wr_term_mw=self.wr_term_mw * dyn,
            act_stby_mw=self.act_stby_mw * stat,
            pre_stby_mw=self.pre_stby_mw * stat,
            pre_pdn_mw=self.pre_pdn_mw * stat,
            ref_mw=self.ref_mw * stat,
            io_scale=self.io_scale,
            idd=IDDValues(
                idd0=self.idd.idd0,
                idd2n=self.idd.idd2n,
                idd3n=self.idd.idd3n,
                vdd=vdd,
                tras_ns=self.idd.tras_ns,
                trc_ns=self.idd.trc_ns,
            ),
        )

    def scaled(self, act_scale: "Tuple[float, ...]") -> "PowerParams":
        """Return params whose ACT powers are ``full * act_scale[g-1]``.

        Used to derive alternative Table-3-style ACT rows from the
        analytic energy model (see :mod:`repro.power.energy_model`).
        """
        if len(act_scale) != 8:
            raise ValueError("need 8 scale factors (granularity 1..8)")
        full = self.act_mw[8]
        new_act = {g: full * act_scale[g - 1] for g in range(1, 9)}
        return PowerParams(
            act_mw=new_act,
            rd_mw=self.rd_mw,
            wr_mw=self.wr_mw,
            rd_io_mw=self.rd_io_mw,
            wr_odt_mw=self.wr_odt_mw,
            rd_term_mw=self.rd_term_mw,
            wr_term_mw=self.wr_term_mw,
            act_stby_mw=self.act_stby_mw,
            pre_stby_mw=self.pre_stby_mw,
            pre_pdn_mw=self.pre_pdn_mw,
            ref_mw=self.ref_mw,
            io_scale=self.io_scale,
            idd=self.idd,
        )


#: Baseline power parameters (Table 3).
DDR3_1600_POWER = PowerParams()
