"""DRAM power modelling: IDD equations, CACTI-style energy model, accounting.

Together these replace the paper's use of the Micron DDR3 power
calculator and CACTI-3DD.
"""

from repro.power.accounting import CATEGORIES, PowerAccountant, PowerBreakdown
from repro.power.energy_model import (
    ActivationEnergyModel,
    DieAreaModel,
    FGDOverheadModel,
    MATS_PER_SUBARRAY,
)
from repro.power.idd import (
    activation_energy_pj,
    pure_activation_current_ma,
    pure_activation_power_mw,
)
from repro.power.params import DDR3_1600_POWER, TABLE3_ACT_MW, IDDValues, PowerParams

__all__ = [
    "activation_energy_pj",
    "ActivationEnergyModel",
    "CATEGORIES",
    "DDR3_1600_POWER",
    "DieAreaModel",
    "FGDOverheadModel",
    "IDDValues",
    "MATS_PER_SUBARRAY",
    "PowerAccountant",
    "PowerBreakdown",
    "PowerParams",
    "pure_activation_current_ma",
    "pure_activation_power_mw",
    "TABLE3_ACT_MW",
]
