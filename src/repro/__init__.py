"""repro: reproduction of "Partial Row Activation for Low-Power DRAM
System" (Lee, Kim, Hong, Kim - HPCA 2017).

Public API tour
---------------

* :mod:`repro.core` — PRA masks and the activation schemes compared in
  the paper (Baseline, FGA, Half-DRAM, PRA, combinations with DBI).
* :mod:`repro.dram` — cycle-level DDR3-1600 device model with the PRA
  command extensions.
* :mod:`repro.controller` — FR-FCFS memory controller, row policies,
  write-drain watermarks, false-row-buffer-hit handling.
* :mod:`repro.cache` — FGD cache hierarchy and the Dirty-Block Index.
* :mod:`repro.cpu` — trace-driven bounded-MLP cores and CMP metrics.
* :mod:`repro.workloads` — calibrated synthetic benchmarks + MIX1-6.
* :mod:`repro.power` — Micron-style power model and CACTI-style
  activation-energy/area model.
* :mod:`repro.sim` — system assembly, the simulator, and the
  experiment runner used by the benchmark harness.

Quickstart::

    from repro import ExperimentRunner, PRA

    runner = ExperimentRunner(events_per_core=5000)
    result = runner.run("GUPS", PRA)
    print(result.summary())
"""

# Engine selection must run before any hot module is imported: the
# bootstrap in repro.engine decides compiled-vs-interpreted and (for a
# forced-interpreted run on a compiled install) installs the meta-path
# finder that keeps the .py sources authoritative.
from repro.engine import ACTIVE_ENGINE
from repro.core import (
    BASELINE,
    DBI,
    DBI_PRA,
    FGA,
    HALF_DRAM,
    HALF_DRAM_PRA,
    PRA,
    PRAMask,
    Scheme,
)
from repro.controller import RowPolicy
from repro.sim import ExperimentRunner, SimResult, System, SystemConfig, simulate
from repro.workloads import ALL_WORKLOADS, BENCHMARKS, Workload, workload

__version__ = "1.0.0"

__all__ = [
    "ACTIVE_ENGINE",
    "ALL_WORKLOADS",
    "BASELINE",
    "BENCHMARKS",
    "DBI",
    "DBI_PRA",
    "ExperimentRunner",
    "FGA",
    "HALF_DRAM",
    "HALF_DRAM_PRA",
    "PRA",
    "PRAMask",
    "RowPolicy",
    "Scheme",
    "simulate",
    "SimResult",
    "System",
    "SystemConfig",
    "workload",
    "Workload",
    "__version__",
]
