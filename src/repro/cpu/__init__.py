"""CPU substrate: trace format, bounded-MLP cores, CMP metrics."""

from repro.cpu.core_model import NEVER, Core
from repro.cpu.metrics import (
    energy_delay_product,
    normalized_performance,
    weighted_speedup,
)
from repro.cpu.trace import TraceEvent, materialize, total_instructions

__all__ = [
    "Core",
    "energy_delay_product",
    "materialize",
    "NEVER",
    "normalized_performance",
    "TraceEvent",
    "total_instructions",
    "weighted_speedup",
]
