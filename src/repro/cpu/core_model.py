"""Trace-driven core model with bounded memory-level parallelism.

Stands in for the paper's gem5 out-of-order x86 cores (3.2 GHz, 8-wide,
ROB 192, LDQ/STQ 32).  The model keeps the two properties the
evaluation depends on:

* **read criticality** — a core can run ahead of an outstanding DRAM
  load only within its ROB window and MSHR budget, so read latency
  determines IPC;
* **write insensitivity** — stores retire through the write buffer and
  never stall the core directly (they stall only indirectly, through
  DRAM write-queue backpressure).

Time is kept in CPU cycles internally and exposed in memory-controller
clock cycles (ratio 4:1 for a 3.2 GHz core over DDR3-1600).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterator, Optional

from repro.cpu.trace import TraceEvent

#: Sentinel "never" cycle for scheduling hints.
NEVER = 1 << 62


class Core:
    """One trace-driven core."""

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceEvent],
        cpu_per_mem_clock: float = 4.0,
        nonmem_cpi: float = 0.5,
        max_outstanding_misses: int = 8,
        rob_instructions: int = 192,
    ) -> None:
        if cpu_per_mem_clock <= 0 or nonmem_cpi <= 0:
            raise ValueError("clock ratio and CPI must be positive")
        self.core_id = core_id
        self._trace = trace
        self.ratio = cpu_per_mem_clock
        self.cpi = nonmem_cpi
        self.mlp = max_outstanding_misses
        self.rob = rob_instructions
        #: req_id -> instructions retired when the miss issued.
        self._outstanding: "OrderedDict[int, int]" = OrderedDict()
        self.retired: int = 0
        self._ready_cpu: float = 0.0
        self._current: Optional[TraceEvent] = self._next_event()
        self.finish_cycle: Optional[int] = None
        self.loads_issued = 0
        self.stores_issued = 0
        self.misses_issued = 0

    # ------------------------------------------------------------------
    def _next_event(self) -> Optional[TraceEvent]:
        event = next(self._trace, None)
        if event is not None:
            self._ready_cpu += event.gap * self.cpi
        return event

    @property
    def trace_done(self) -> bool:
        return self._current is None

    @property
    def done(self) -> bool:
        return self._current is None and not self._outstanding

    @property
    def outstanding_misses(self) -> int:
        return len(self._outstanding)

    def _blocked(self) -> bool:
        if len(self._outstanding) >= self.mlp:
            return True
        if self._outstanding:
            oldest_retired = next(iter(self._outstanding.values()))
            if self.retired - oldest_retired >= self.rob:
                return True
        return False

    # ------------------------------------------------------------------
    def next_action_cycle(self, cycle: int) -> int:
        """Earliest memory cycle the core may issue its next access."""
        # _blocked() is inlined here and in try_advance: the two are the
        # event loop's hottest per-core calls.
        if self._current is None:
            return NEVER
        outstanding = self._outstanding
        if outstanding:
            if len(outstanding) >= self.mlp:
                return NEVER
            if self.retired - next(iter(outstanding.values())) >= self.rob:
                return NEVER
        ready_mem = math.ceil(self._ready_cpu / self.ratio)
        return ready_mem if ready_mem > cycle else cycle

    def try_advance(self, cycle: int) -> Optional[TraceEvent]:
        """Pop the next access if the core is ready at ``cycle``."""
        event = self._current
        if event is None:
            return None
        outstanding = self._outstanding
        if outstanding:
            if len(outstanding) >= self.mlp:
                return None
            if self.retired - next(iter(outstanding.values())) >= self.rob:
                return None
        now_cpu = cycle * self.ratio
        if self._ready_cpu > now_cpu:
            return None
        self.retired += event.instructions
        self._ready_cpu = now_cpu
        if event.is_store:
            self.stores_issued += 1
        else:
            self.loads_issued += 1
        self._current = self._next_event()
        if self._current is None and not outstanding:
            self.finish_cycle = cycle
        return event

    # ------------------------------------------------------------------
    def note_demand_miss(self, req_id: int) -> None:
        """A demand load left for DRAM: occupy an MSHR/ROB slot."""
        if len(self._outstanding) >= self.mlp:
            raise RuntimeError("MLP budget exceeded (scheduler bug)")
        self._outstanding[req_id] = self.retired

    def on_fill_complete(self, req_id: int, cycle: int) -> None:
        """DRAM returned data for an outstanding demand load."""
        if req_id not in self._outstanding:
            raise KeyError(f"unknown outstanding miss {req_id}")
        del self._outstanding[req_id]
        # If the core was stalled on this load, it resumes now.
        self._ready_cpu = max(self._ready_cpu, cycle * self.ratio)
        if self._current is None and not self._outstanding:
            self.finish_cycle = cycle

    def stall_until(self, cycle: int) -> None:
        """External backpressure (e.g. full store path) delays the core."""
        self._ready_cpu = max(self._ready_cpu, cycle * self.ratio)

    # ------------------------------------------------------------------
    def ipc(self, end_cycle: Optional[int] = None) -> float:
        """Instructions per CPU cycle up to ``end_cycle`` (mem clock)."""
        end = self.finish_cycle if end_cycle is None else end_cycle
        if end is None or end <= 0:
            return 0.0
        return self.retired / (end * self.ratio)
