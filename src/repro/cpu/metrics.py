"""CMP performance metrics: weighted speedup and energy-delay product.

Weighted speedup (Equation 3 of the paper):

    WS = sum_i IPC_i^shared / IPC_i^alone

where ``IPC_i^alone`` is measured with application *i* running alone on
the CMP and ``IPC_i^shared`` with the full mix.  Normalized performance
in the figures is WS of a scheme divided by WS of the baseline.
"""

from __future__ import annotations

from typing import Sequence


def weighted_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Equation 3: sum of per-application shared/alone IPC ratios."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists must align")
    if not shared_ipcs:
        raise ValueError("need at least one application")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def normalized_performance(ws_scheme: float, ws_baseline: float) -> float:
    """Weighted speedup relative to the baseline scheme."""
    if ws_baseline <= 0:
        raise ValueError("baseline weighted speedup must be positive")
    return ws_scheme / ws_baseline


def energy_delay_product(energy: float, delay: float) -> float:
    """EDP; the paper reports it normalized to the baseline."""
    if energy < 0 or delay < 0:
        raise ValueError("energy and delay must be non-negative")
    return energy * delay
