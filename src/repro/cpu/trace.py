"""Memory-access traces consumed by the core model.

A trace is an iterable of :class:`TraceEvent`.  Each event is one
memory instruction plus the ``gap`` of non-memory instructions executed
before it.  Addresses are cache-line indices; stores carry the FGD
word mask they dirty.  ``no_fill`` marks non-temporal streaming stores
that allocate without fetching the line from DRAM.

Traces stand in for the paper's gem5 + SimPoint execution of
SPEC CPU2006 / Olden / GUPS / LinkedList regions; the generators in
:mod:`repro.workloads` synthesize them from calibrated profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.dram.geometry import FULL_MASK


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One memory instruction in a core's instruction stream."""

    #: Non-memory instructions executed before this access.
    gap: int
    #: Cache-line index accessed.
    line_addr: int
    #: 0 for a load; otherwise the FGD word mask the store dirties.
    write_mask: int = 0
    #: True for streaming stores that skip the write-allocate fill.
    no_fill: bool = False

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.line_addr < 0:
            raise ValueError("line address must be non-negative")
        if not 0 <= self.write_mask <= FULL_MASK:
            raise ValueError(f"write mask out of range: {self.write_mask:#x}")

    @property
    def is_store(self) -> bool:
        return self.write_mask != 0

    @property
    def instructions(self) -> int:
        """Instructions this event retires (gap + the access itself)."""
        return self.gap + 1


def materialize(events: Iterable[TraceEvent], limit: int) -> List[TraceEvent]:
    """Take up to ``limit`` events from a (possibly infinite) trace."""
    out: List[TraceEvent] = []
    for event in events:
        out.append(event)
        if len(out) >= limit:
            break
    return out


def total_instructions(events: Iterable[TraceEvent]) -> int:
    """Total instructions (gaps + accesses) a trace retires."""
    return sum(e.instructions for e in events)


def as_iterator(trace: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
    """Normalize any trace iterable into an iterator."""
    return iter(trace)
